"""Cheap-when-off accounting: no counters, tags, or format strings
when nothing records them.

The contract (satellite of the compiled fast path): with no device
attached and production mode off, the hot loops must not construct
``KernelCounters``, shard-tag strings, or deferred closures at all —
not build-and-discard them.  These tests count the constructions
directly by monkeypatching the construction sites.
"""

import numpy as np
import pytest

import repro.core.spmspv_kernels as spmspv_kernels
import repro.fastpath.fused_bfs as fused_bfs
import repro.shards.engine as shards_engine
from repro.core.spmspv import TileSpMSpV
from repro.core.spmspv_kernels import (coo_side_kernel, csc_tiled_kernel,
                                       tiled_kernel)
from repro.core.tilebfs import TileBFS
from repro.gpusim import Device
from repro.runtime import ExecutionContext
from repro.shards.engine import ShardedSpMSpV
from repro.vectors.sparse_vector import SparseVector

from ..conftest import random_coo, random_graph_coo


def sparse_x(n, k, seed=1):
    rng = np.random.default_rng(seed)
    idx = np.sort(rng.choice(n, size=k, replace=False))
    return SparseVector(n, idx, rng.random(k) + 0.5)


def counting(monkeypatch, module, name):
    """Replace ``module.name`` with a call-counting wrapper."""
    calls = []
    orig = getattr(module, name)

    def wrapper(*args, **kwargs):
        calls.append(args)
        return orig(*args, **kwargs)

    monkeypatch.setattr(module, name, wrapper)
    return calls


# ----------------------------------------------------------------------
# kernel-level: with_counters=False skips the accounting block
# ----------------------------------------------------------------------
def test_with_counters_off_returns_none_same_result():
    coo = random_coo(120, 120, density=0.05, seed=4)
    op = TileSpMSpV(coo, nt=16)
    xt = op._as_tiled_vector(sparse_x(120, 20))
    y_on, c_on = tiled_kernel(op.hybrid.tiled, xt)
    y_off, c_off = tiled_kernel(op.hybrid.tiled, xt, with_counters=False)
    assert c_on is not None and c_off is None
    assert np.array_equal(y_on, y_off)

    yc_on, cc_on = csc_tiled_kernel(op._transposed(), xt)
    yc_off, cc_off = csc_tiled_kernel(op._transposed(), xt,
                                      with_counters=False)
    assert cc_on is not None and cc_off is None
    assert np.array_equal(yc_on, yc_off)

    if op.hybrid.side.nnz:
        ys_on, cs_on = coo_side_kernel(op._side_index, xt)
        ys_off, cs_off = coo_side_kernel(op._side_index, xt,
                                         with_counters=False)
        assert cs_on is not None and cs_off is None
        assert np.array_equal(ys_on, ys_off)


def test_multiply_builds_no_counters_when_off(monkeypatch):
    coo = random_coo(120, 120, density=0.05, seed=4)
    x = sparse_x(120, 20)
    op_off = TileSpMSpV(coo, nt=16)
    op_on = TileSpMSpV(coo, nt=16, device=Device())
    # count after construction: preprocessing is not under test
    calls = counting(monkeypatch, spmspv_kernels, "KernelCounters")
    op_off.multiply(x)
    assert not calls, "counters built with no device attached"
    op_on.multiply(x)
    assert calls, "counters-on run must construct counters"


def test_fused_bfs_defers_closures_only_in_production(monkeypatch):
    monkeypatch.setenv("REPRO_FASTPATH", "numpy")
    coo = random_graph_coo(150, avg_degree=4.0, seed=5)
    calls = counting(monkeypatch, fused_bfs, "layer_counter_closure")

    res = TileBFS(coo, nt=16).run(0)          # functional: nothing built
    assert not calls
    op = TileBFS(coo, nt=16, device=ExecutionContext(mode="production"))
    got = op.run(0)
    assert len(calls) == len(got.iterations)
    assert np.array_equal(got.levels, res.levels)


def test_shard_tags_not_built_when_off(monkeypatch, tmp_path):
    coo = random_coo(160, 160, density=0.05, seed=7)
    x = sparse_x(160, 25)
    calls = counting(monkeypatch, shards_engine, "_shard_tag")

    off = ShardedSpMSpV(coo, nt=16, n_shards=3,
                        store_dir=tmp_path / "off")
    y_off = off.multiply(x, output="dense")
    off.multiply_batch([x, sparse_x(160, 40, seed=2)])
    assert not calls, "shard tag strings built with accounting off"

    on = ShardedSpMSpV(coo, nt=16, n_shards=3, device=Device(),
                       store_dir=tmp_path / "on")
    y_on = on.multiply(x, output="dense")
    assert calls, "counters-on run must tag per-shard launches"
    assert np.array_equal(y_off, y_on)


def test_shard_tag_formats():
    assert shards_engine._shard_tag(3) == "shard=3"
    assert shards_engine._shard_tag(3, "batch=2") == "batch=2;shard=3"
