"""The ``python -m repro.bench profile`` per-layer breakdown CLI."""

import json

from repro.bench.profile import main, profile_bfs


def test_profile_document_shape():
    doc = profile_bfs(scale=8, edge_factor=4, nt=16, repeats=1)
    assert set(doc["sections"]) == {"kernels", "fastpath"}
    k, f = doc["sections"]["kernels"], doc["sections"]["fastpath"]
    for section in (k, f):
        assert section["iterations"] == len(section["layers"])
        assert section["total_ms"] > 0
    # both tiers traverse the same graph: identical per-layer traces
    assert k["reached"] == f["reached"]
    assert [(r["kernel"], r["frontier_size"], r["new_vertices"])
            for r in k["layers"]] == \
           [(r["kernel"], r["frontier_size"], r["new_vertices"])
            for r in f["layers"]]
    assert doc["speedup"] is not None
    assert doc["meta"]["fastpath_tier"] in ("numba", "numpy", "off")


def test_profile_cli_json_and_pstats(tmp_path, capsys):
    out = tmp_path / "prof.json"
    rc = main(["--scale", "8", "--edge-factor", "4", "--nt", "16",
               "--repeats", "1", "--out", str(out),
               "--pstats-out", str(tmp_path / "prof")])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["meta"]["scale"] == 8
    for tier in ("kernels", "fastpath"):
        assert (tmp_path / f"prof.{tier}.pstats").exists()
    text = capsys.readouterr().out
    assert "TileBFS profile" in text
    assert "fastpath speedup" in text


def test_profile_dispatch_via_bench_main(tmp_path, capsys):
    from repro.bench.__main__ import main as bench_main
    rc = bench_main(["profile", "--scale", "7", "--edge-factor", "4",
                     "--nt", "16", "--repeats", "1"])
    assert rc == 0
    assert "TileBFS profile" in capsys.readouterr().out
