"""Device.snapshot() / reset() round-trips."""

import numpy as np

from repro.core import TileSpMSpV
from repro.gpusim import Device, KernelCounters, RTX3090
from repro.vectors import random_sparse_vector

from ..conftest import random_coo


class TestSnapshot:
    def test_snapshot_is_immutable_copy(self):
        dev = Device(RTX3090)
        dev.submit("k1", KernelCounters(flops=1e6, warps=100))
        snap = dev.snapshot()
        assert isinstance(snap, tuple)
        assert list(snap) == dev.timeline
        dev.submit("k2", KernelCounters(flops=1e6, warps=100))
        # the snapshot does not grow with the live timeline
        assert len(snap) == 1 and len(dev.timeline) == 2

    def test_empty_snapshot(self):
        assert Device(RTX3090).snapshot() == ()

    def test_round_trip_reset_and_rerun(self):
        """run -> snapshot -> reset -> identical re-run reproduces the
        snapshot exactly (records are frozen dataclasses, so == means
        identical names, counters, priced times, tags)."""
        coo = random_coo(80, 80, density=0.1, seed=21)
        x = random_sparse_vector(80, 0.1)
        dev = Device(RTX3090)
        op = TileSpMSpV(coo, nt=16, device=dev)
        y1 = op.multiply(x)
        snap = dev.snapshot()
        elapsed = dev.elapsed_ms
        assert len(snap) > 0

        dev.reset()
        assert dev.timeline == [] and dev.elapsed_ms == 0.0

        y2 = op.multiply(x)
        assert dev.snapshot() == snap
        assert dev.elapsed_ms == elapsed
        assert np.array_equal(y1.indices, y2.indices)
        assert np.allclose(y1.values, y2.values)
