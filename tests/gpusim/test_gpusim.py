"""Tests for the GPU execution model: specs, counters, cost, device."""

import pytest

from repro.errors import DeviceError
from repro.gpusim import (RTX3060, RTX3090, CostModel, Device, GPUSpec,
                          KernelCounters, get_spec)


class TestSpec:
    def test_presets_match_paper_table1(self):
        assert RTX3060.cuda_cores == 3584
        assert RTX3060.clock_ghz == pytest.approx(1.78)
        assert RTX3060.mem_bandwidth_gbps == pytest.approx(360.0)
        assert RTX3090.cuda_cores == 10496
        assert RTX3090.clock_ghz == pytest.approx(1.70)
        assert RTX3090.mem_bandwidth_gbps == pytest.approx(936.2)

    def test_peak_gflops(self):
        assert RTX3090.peak_gflops == pytest.approx(10496 * 1.70 * 2.0)

    def test_get_spec_forgiving_names(self):
        assert get_spec("RTX 3090") is RTX3090
        assert get_spec("rtx3060") is RTX3060
        assert get_spec("GeForce RTX 3090") is RTX3090

    def test_get_spec_unknown(self):
        with pytest.raises(DeviceError):
            get_spec("H100")

    def test_invalid_spec_rejected(self):
        with pytest.raises(DeviceError):
            GPUSpec(name="bad", sm_count=0, cuda_cores=1, clock_ghz=1.0,
                    mem_bandwidth_gbps=1.0, l2_bytes=1,
                    shared_mem_per_sm=1)


class TestCounters:
    def test_defaults_valid(self):
        KernelCounters().check()

    def test_negative_counter_rejected(self):
        with pytest.raises(DeviceError):
            KernelCounters(flops=-1.0)

    def test_bad_divergence_rejected(self):
        with pytest.raises(DeviceError):
            KernelCounters(divergence=0.0)
        with pytest.raises(DeviceError):
            KernelCounters(divergence=1.5)

    def test_global_bytes_includes_sectors(self):
        c = KernelCounters(coalesced_read_bytes=100.0, random_read_count=2)
        assert c.global_bytes == 100.0 + 2 * 32

    def test_merged_adds(self):
        a = KernelCounters(flops=10, warps=2, launches=1)
        b = KernelCounters(flops=5, warps=2, launches=2)
        m = a.merged(b)
        assert m.flops == 15 and m.launches == 3 and m.warps == 4

    def test_merged_divergence_weighted(self):
        a = KernelCounters(warps=3, divergence=1.0)
        b = KernelCounters(warps=1, divergence=0.5)
        assert a.merged(b).divergence == pytest.approx(
            (3 * 1.0 + 1 * 0.5) / 4)

    def test_sum_empty(self):
        total = KernelCounters.sum([])
        assert total.launches == 0 and total.flops == 0


class TestCostModel:
    def test_launch_overhead_floor(self):
        """An empty kernel still costs one launch."""
        model = CostModel(RTX3090)
        t = model.evaluate(KernelCounters())
        assert t.total_ms >= RTX3090.launch_overhead_us * 1e-3

    def test_memory_bound_scales_with_bytes(self):
        model = CostModel(RTX3090)
        small = KernelCounters(coalesced_read_bytes=1e6, warps=1e5)
        big = KernelCounters(coalesced_read_bytes=1e8, warps=1e5)
        assert model.time_ms(big) > model.time_ms(small) * 10

    def test_memory_time_matches_bandwidth(self):
        model = CostModel(RTX3090)
        c = KernelCounters(coalesced_read_bytes=936.2e9 / 1000,
                           warps=1e6)   # 1ms worth of traffic, saturated
        t = model.evaluate(c)
        assert t.memory_ms == pytest.approx(1.0, rel=0.05)

    def test_compute_bound_detection(self):
        model = CostModel(RTX3090)
        c = KernelCounters(flops=1e12, coalesced_read_bytes=8.0, warps=1e6)
        assert model.evaluate(c).bound == "compute"

    def test_atomic_bound_detection(self):
        model = CostModel(RTX3090)
        c = KernelCounters(atomic_ops=1e9, warps=1e6)
        assert model.evaluate(c).bound == "atomic"

    def test_launch_bound_detection(self):
        model = CostModel(RTX3090)
        c = KernelCounters(coalesced_read_bytes=128.0, warps=1.0)
        assert model.evaluate(c).bound == "launch"

    def test_divergence_slows_compute(self):
        model = CostModel(RTX3090)
        full = KernelCounters(flops=1e10, warps=1e6, divergence=1.0)
        half = KernelCounters(flops=1e10, warps=1e6, divergence=0.5)
        assert model.evaluate(half).compute_ms == pytest.approx(
            2 * model.evaluate(full).compute_ms)

    def test_low_occupancy_penalised(self):
        model = CostModel(RTX3090)
        few = KernelCounters(coalesced_read_bytes=1e8, warps=10)
        many = KernelCounters(coalesced_read_bytes=1e8, warps=1e5)
        assert model.time_ms(few) > model.time_ms(many)

    def test_same_counters_faster_on_3090_than_3060(self):
        c = KernelCounters(coalesced_read_bytes=1e8, flops=1e9, warps=1e5)
        assert CostModel(RTX3090).time_ms(c) < CostModel(RTX3060).time_ms(c)

    def test_invalid_contention_rejected(self):
        with pytest.raises(DeviceError):
            CostModel(RTX3090, atomic_contention=0.0)

    def test_invalid_per_warp_rates_rejected(self):
        with pytest.raises(DeviceError):
            CostModel(RTX3090, warp_gbps=0.0)
        with pytest.raises(DeviceError):
            CostModel(RTX3090, warp_gflops=-1.0)

    def test_bigger_gpu_never_slower(self):
        """The cross-card consistency the per-warp model guarantees."""
        for warps in (1.0, 50.0, 400.0, 1e5):
            c = KernelCounters(coalesced_read_bytes=1e7, flops=1e8,
                               warps=warps)
            assert CostModel(RTX3090).time_ms(c) <= \
                CostModel(RTX3060).time_ms(c) + 1e-12

    def test_low_occupancy_identical_across_cards(self):
        """A kernel too small to saturate either card runs at the same
        speed on both (latency-bound, not bandwidth-bound)."""
        c = KernelCounters(coalesced_read_bytes=1e7, warps=10.0)
        t60 = CostModel(RTX3060).evaluate(c).memory_ms
        t90 = CostModel(RTX3090).evaluate(c).memory_ms
        assert t60 == pytest.approx(t90)

    def test_l2_traffic_cheaper_than_dram(self):
        model = CostModel(RTX3090)
        dram = KernelCounters(coalesced_read_bytes=1e8, warps=1e5)
        l2 = KernelCounters(l2_read_bytes=1e8, warps=1e5)
        assert model.evaluate(l2).memory_ms < model.evaluate(dram).memory_ms


class TestDevice:
    def test_timeline_accumulates(self):
        dev = Device(RTX3090)
        dev.submit("k1", KernelCounters(flops=1e6, warps=100))
        dev.submit("k2", KernelCounters(flops=1e6, warps=100))
        assert len(dev.timeline) == 2
        assert dev.elapsed_ms > 0

    def test_reset(self):
        dev = Device(RTX3090)
        dev.submit("k", KernelCounters())
        dev.reset()
        assert dev.elapsed_ms == 0 and len(dev.timeline) == 0

    def test_split_and_elapsed_since(self):
        dev = Device(RTX3090)
        dev.submit("a", KernelCounters())
        mark = dev.split()
        dev.submit("b", KernelCounters())
        assert dev.elapsed_since(mark) == pytest.approx(
            dev.timeline[1].ms)
        assert len(dev.records_since(mark)) == 1

    def test_kernel_breakdown(self):
        dev = Device(RTX3090)
        dev.submit("a", KernelCounters())
        dev.submit("a", KernelCounters())
        dev.submit("b", KernelCounters())
        bd = dev.kernel_breakdown()
        assert set(bd) == {"a", "b"}
        assert bd["a"] == pytest.approx(2 * bd["b"])

    def test_empty_name_rejected(self):
        with pytest.raises(DeviceError):
            Device(RTX3090).submit("", KernelCounters())

    def test_memcpy_cost(self):
        dev = Device(RTX3090)
        t = dev.memcpy(25e9 / 1000)   # 1 ms worth of PCIe traffic
        assert t.total_ms == pytest.approx(1.01, rel=0.05)

    def test_memcpy_negative_rejected(self):
        with pytest.raises(DeviceError):
            Device(RTX3090).memcpy(-1)
