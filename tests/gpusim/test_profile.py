"""Tests for the timeline profiler."""

import pytest

from repro.core import TileSpMSpV
from repro.errors import DeviceError
from repro.gpusim import (Device, KernelCounters, RTX3090, format_profile,
                          profile_device, timeline_csv)
from repro.vectors import random_sparse_vector

from ..conftest import random_dense


@pytest.fixture
def busy_device():
    dev = Device(RTX3090)
    op = TileSpMSpV(random_dense(100, 100, 0.1, seed=1), nt=16,
                    device=dev)
    for i in range(3):
        op.multiply(random_sparse_vector(100, 0.1, seed=i))
    return dev


class TestProfileDevice:
    def test_groups_by_kernel_name(self, busy_device):
        profiles = profile_device(busy_device)
        names = {p.name for p in profiles}
        assert "tile_spmspv_csr" in names
        csr = next(p for p in profiles if p.name == "tile_spmspv_csr")
        assert csr.calls == 3
        assert csr.total_ms == pytest.approx(3 * csr.mean_ms)

    def test_sorted_by_total_time(self, busy_device):
        profiles = profile_device(busy_device)
        totals = [p.total_ms for p in profiles]
        assert totals == sorted(totals, reverse=True)

    def test_empty_device(self):
        assert profile_device(Device(RTX3090)) == []

    def test_dominant_bound_valid(self, busy_device):
        for p in profile_device(busy_device):
            assert p.dominant_bound in ("launch", "memory", "compute",
                                        "atomic")

    def test_effective_rates(self):
        dev = Device(RTX3090)
        dev.submit("k", KernelCounters(coalesced_read_bytes=1e8,
                                       flops=1e9, warps=1e5))
        p = profile_device(dev)[0]
        assert p.effective_bandwidth_gbps > 0
        assert p.effective_gflops > 0


class TestFormatProfile:
    def test_contains_kernels_and_total(self, busy_device):
        text = format_profile(busy_device)
        assert "tile_spmspv_csr" in text
        assert "total simulated" in text
        assert "RTX 3090" in text

    def test_custom_title(self, busy_device):
        assert format_profile(busy_device, title="XYZ").startswith("XYZ")


class TestTimelineCsv:
    def test_header_and_rows(self, busy_device):
        csv = timeline_csv(busy_device)
        lines = csv.strip().splitlines()
        assert lines[0].startswith("index,name,tag,total_ms")
        assert len(lines) == 1 + len(busy_device.timeline)

    def test_parseable_floats(self, busy_device):
        line = timeline_csv(busy_device).strip().splitlines()[1]
        cells = line.split(",")
        float(cells[3])   # total_ms
        float(cells[8])   # efficiency

    def test_none_device_rejected(self):
        with pytest.raises(DeviceError):
            timeline_csv(None)
