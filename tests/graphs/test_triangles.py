"""Tests for triangle counting (batched SpMSpV exerciser)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.formats import COOMatrix
from repro.graphs import triangle_count, triangles_per_vertex

from ..conftest import nx_graph_of, random_graph_coo


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_per_vertex_matches(self, seed):
        import networkx as nx

        coo = random_graph_coo(70, 5.0, seed=seed)
        ref = nx.triangles(nx_graph_of(coo))
        ours = triangles_per_vertex(coo, nt=8)
        assert all(ours[v] == ref[v] for v in range(70))

    @given(st.integers(3, 60), st.integers(0, 10**5),
           st.sampled_from([1, 8, 64]))
    @settings(max_examples=15, deadline=None)
    def test_total_matches(self, n, seed, batch):
        import networkx as nx

        coo = random_graph_coo(n, 5.0, seed)
        ref = sum(nx.triangles(nx_graph_of(coo)).values()) // 3
        assert triangle_count(coo, nt=4, batch_size=batch) == ref


class TestKnownGraphs:
    def test_triangle_graph(self):
        coo = COOMatrix((3, 3),
                        np.array([0, 1, 1, 2, 0, 2]),
                        np.array([1, 0, 2, 1, 2, 0]))
        assert triangle_count(coo, nt=2) == 1
        assert triangles_per_vertex(coo, nt=2).tolist() == [1, 1, 1]

    def test_square_has_none(self):
        rows = np.array([0, 1, 1, 2, 2, 3, 3, 0])
        cols = np.array([1, 0, 2, 1, 3, 2, 0, 3])
        coo = COOMatrix((4, 4), rows, cols)
        assert triangle_count(coo, nt=2) == 0

    def test_complete_graph(self):
        n = 6
        d = 1.0 - np.eye(n)
        assert triangle_count(COOMatrix.from_dense(d), nt=2) == 20  # C(6,3)

    def test_self_loops_ignored(self):
        coo = COOMatrix((3, 3),
                        np.array([0, 1, 1, 2, 0, 2, 0]),
                        np.array([1, 0, 2, 1, 2, 0, 0]))
        assert triangle_count(coo, nt=2) == 1

    def test_empty_graph(self):
        assert triangle_count(COOMatrix.empty((5, 5)), nt=2) == 0


class TestValidation:
    def test_nonsquare(self):
        with pytest.raises(ShapeError):
            triangle_count(COOMatrix.empty((3, 4)), nt=2)

    def test_bad_batch_size(self):
        with pytest.raises(ShapeError):
            triangle_count(COOMatrix.empty((3, 3)), nt=2, batch_size=0)


class TestExtractionAdvisor:
    def test_empty_matrix_zero(self):
        from repro.tiles import suggest_extract_threshold

        assert suggest_extract_threshold(COOMatrix.empty((8, 8)), 4) == 0

    def test_dusty_matrix_extracts(self):
        from repro.tiles import suggest_extract_threshold

        rng = np.random.default_rng(0)
        n = 20_000
        rows = rng.integers(0, n, 30_000)
        cols = rng.integers(0, n, 30_000)
        dust = COOMatrix((n, n), rows, cols,
                         np.ones(30_000)).sum_duplicates()
        assert suggest_extract_threshold(dust, 16) >= 1

    def test_bounded_by_max(self):
        from repro.tiles import suggest_extract_threshold
        from ..conftest import random_dense

        coo = COOMatrix.from_dense(random_dense(64, 64, 0.05, seed=1))
        t = suggest_extract_threshold(coo, 16, max_threshold=3)
        assert 0 <= t <= 3

    def test_negative_max_rejected(self):
        from repro.errors import TileError
        from repro.tiles import suggest_extract_threshold

        with pytest.raises(TileError):
            suggest_extract_threshold(COOMatrix.empty((4, 4)), 4,
                                      max_threshold=-1)
