"""Tests for the graph applications: reference BFS, BC, RCM."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.formats import COOMatrix
from repro.graphs import (bandwidth, betweenness_centrality, bfs_levels,
                          rcm_ordering)
from repro.matrices import banded, mesh2d

from ..conftest import nx_graph_of, nx_levels, random_graph_coo


class TestBfsReference:
    def test_matches_networkx(self):
        coo = random_graph_coo(150, 4.0, seed=1)
        assert np.array_equal(bfs_levels(coo, 0), nx_levels(coo, 0))

    def test_matches_tilebfs(self):
        from repro.core import tile_bfs

        coo = random_graph_coo(90, 4.0, seed=2)
        assert np.array_equal(bfs_levels(coo, 5),
                              tile_bfs(coo, 5, nt=4).levels)

    def test_source_out_of_range(self):
        with pytest.raises(ShapeError):
            bfs_levels(COOMatrix.empty((3, 3)), 3)

    def test_nonsquare_rejected(self):
        with pytest.raises(ShapeError):
            bfs_levels(COOMatrix.empty((3, 4)), 0)

    def test_accepts_dense(self):
        d = np.zeros((4, 4))
        d[0, 1] = d[1, 0] = 1.0
        assert bfs_levels(d, 0).tolist() == [0, 1, -1, -1]


class TestBetweennessCentrality:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_exact_matches_networkx(self, seed):
        import networkx as nx

        coo = random_graph_coo(35, 4.0, seed=seed)
        G = nx_graph_of(coo)
        ours = betweenness_centrality(coo, nt=4)
        ref = nx.betweenness_centrality(G)
        refv = np.array([ref[i] for i in range(35)])
        assert np.allclose(ours, refv, atol=1e-9)

    def test_unnormalized(self):
        import networkx as nx

        coo = random_graph_coo(25, 4.0, seed=5)
        ours = betweenness_centrality(coo, nt=4, normalized=False)
        ref = nx.betweenness_centrality(nx_graph_of(coo),
                                        normalized=False)
        # networkx halves undirected counts; Brandes delta counts each
        # pair twice
        refv = np.array([ref[i] for i in range(25)]) * 2
        assert np.allclose(ours, refv, atol=1e-9)

    def test_star_graph_center(self):
        n = 9
        rows = np.concatenate([np.zeros(n - 1, dtype=int),
                               np.arange(1, n)])
        cols = np.concatenate([np.arange(1, n),
                               np.zeros(n - 1, dtype=int)])
        coo = COOMatrix((n, n), rows, cols)
        bc = betweenness_centrality(coo, nt=4, normalized=False)
        # every pair of leaves routes through the center: 2 * C(8,2)
        assert bc[0] == pytest.approx(2 * 28)
        assert np.allclose(bc[1:], 0.0)

    def test_pivot_subset_runs(self):
        coo = random_graph_coo(60, 4.0, seed=6)
        bc = betweenness_centrality(coo, sources=[0, 1, 2], nt=4)
        assert bc.shape == (60,)
        assert np.all(bc >= 0)

    def test_source_out_of_range(self):
        coo = random_graph_coo(10, 3.0, seed=7)
        with pytest.raises(ShapeError):
            betweenness_centrality(coo, sources=[10], nt=4)

    def test_nonsquare_rejected(self):
        with pytest.raises(ShapeError):
            betweenness_centrality(COOMatrix.empty((3, 4)), nt=2)


class TestRCM:
    def test_permutation_valid(self):
        coo = random_graph_coo(80, 4.0, seed=8)
        perm = rcm_ordering(coo, nt=4)
        assert sorted(perm.tolist()) == list(range(80))

    def test_reduces_bandwidth_on_shuffled_band(self):
        """The canonical RCM test: shuffle a banded matrix, RCM should
        recover a narrow band."""
        m = banded(300, bandwidth=2, extra_bands=0, seed=9)
        rng = np.random.default_rng(10)
        shuffle = rng.permutation(300)
        shuffled = COOMatrix((300, 300), shuffle[m.row], shuffle[m.col],
                             m.val)
        b_before = bandwidth(shuffled)
        perm = rcm_ordering(shuffled, nt=4)
        b_after = bandwidth(shuffled, perm)
        assert b_after < b_before / 4

    def test_shuffled_mesh_bandwidth_recovered(self):
        """A row-major mesh is already optimally ordered (RCM cannot
        beat it), but RCM must recover a narrow band from a shuffle."""
        m = mesh2d(12, seed=11)
        rng = np.random.default_rng(20)
        shuffle = rng.permutation(m.shape[0])
        shuffled = COOMatrix(m.shape, shuffle[m.row], shuffle[m.col],
                             m.val)
        perm = rcm_ordering(shuffled, nt=4)
        assert bandwidth(shuffled, perm) < bandwidth(shuffled) / 2

    def test_disconnected_graph_covered(self):
        coo = COOMatrix((8, 8), np.array([0, 1, 4, 5]),
                        np.array([1, 0, 5, 4]))
        perm = rcm_ordering(coo, nt=2)
        assert sorted(perm.tolist()) == list(range(8))

    def test_explicit_start(self):
        coo = random_graph_coo(40, 4.0, seed=12)
        perm = rcm_ordering(coo, start=7, nt=4)
        assert sorted(perm.tolist()) == list(range(40))

    def test_bad_start_rejected(self):
        coo = random_graph_coo(10, 3.0, seed=13)
        with pytest.raises(ShapeError):
            rcm_ordering(coo, start=99, nt=2)


class TestBandwidth:
    def test_empty(self):
        assert bandwidth(COOMatrix.empty((5, 5))) == 0

    def test_diagonal(self):
        assert bandwidth(COOMatrix.from_dense(np.eye(4))) == 0

    def test_known_value(self):
        coo = COOMatrix((5, 5), np.array([0]), np.array([4]))
        assert bandwidth(coo) == 4

    def test_with_permutation(self):
        coo = COOMatrix((3, 3), np.array([0]), np.array([2]))
        perm = np.array([0, 2, 1])   # position of old idx in new order
        # inv perm maps old->new: 0->0, 2->1, 1->2 => |0-1| = 1
        assert bandwidth(coo, perm) == 1


class TestBatchedBC:
    @pytest.mark.parametrize("batch_size", [2, 7, 64])
    def test_identical_to_sequential(self, batch_size):
        coo = random_graph_coo(45, 4.0, seed=14)
        seq = betweenness_centrality(coo, nt=8)
        bat = betweenness_centrality(coo, nt=8, batch_size=batch_size)
        assert np.allclose(bat, seq)

    def test_batched_saves_simulated_time(self):
        from repro.gpusim import Device, RTX3090

        coo = random_graph_coo(80, 4.0, seed=15)
        d_seq = Device(RTX3090)
        betweenness_centrality(coo, nt=8, device=d_seq,
                               sources=range(12))
        d_bat = Device(RTX3090)
        betweenness_centrality(coo, nt=8, device=d_bat,
                               sources=range(12), batch_size=12)
        assert d_bat.elapsed_ms < d_seq.elapsed_ms

    def test_pivot_subset_batched(self):
        import networkx as nx

        coo = random_graph_coo(40, 4.0, seed=16)
        a = betweenness_centrality(coo, sources=[0, 5, 9], nt=8,
                                   batch_size=3)
        b = betweenness_centrality(coo, sources=[0, 5, 9], nt=8)
        assert np.allclose(a, b)

    def test_bad_batch_size(self):
        coo = random_graph_coo(10, 3.0, seed=17)
        with pytest.raises(ShapeError):
            betweenness_centrality(coo, nt=2, batch_size=0)
