"""Tests for the extended graph algorithms (CC, PageRank, SSSP)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.formats import COOMatrix
from repro.graphs import connected_components, pagerank, sssp

from ..conftest import nx_graph_of, random_graph_coo


class TestConnectedComponents:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_networkx(self, seed):
        import networkx as nx

        coo = random_graph_coo(150, 1.5, seed=seed)   # sparse => many comps
        labels = connected_components(coo, nt=16)
        G = nx_graph_of(coo)
        for comp in nx.connected_components(G):
            ids = {labels[v] for v in comp}
            assert ids == {min(comp)}

    def test_label_is_min_vertex(self):
        coo = COOMatrix((5, 5), np.array([0, 1, 3, 4]),
                        np.array([1, 0, 4, 3]))
        labels = connected_components(coo, nt=2)
        assert labels.tolist() == [0, 0, 2, 3, 3]

    def test_fully_connected(self):
        coo = random_graph_coo(60, 8.0, seed=3)
        labels = connected_components(coo, nt=4)
        # dense ER graph at this degree is connected w.h.p.
        assert len(set(labels.tolist())) <= 3

    def test_no_edges(self):
        labels = connected_components(COOMatrix.empty((7, 7)), nt=2)
        assert labels.tolist() == list(range(7))

    def test_empty_graph(self):
        assert len(connected_components(COOMatrix.empty((0, 0)), nt=2)) == 0

    def test_nonsquare_rejected(self):
        with pytest.raises(ShapeError):
            connected_components(COOMatrix.empty((3, 4)), nt=2)

    @given(st.integers(2, 80), st.integers(0, 10**5))
    @settings(max_examples=20, deadline=None)
    def test_property_labels_consistent_across_edges(self, n, seed):
        coo = random_graph_coo(n, 2.0, seed)
        labels = connected_components(coo, nt=4)
        # every edge joins same-labelled vertices
        assert np.all(labels[coo.row] == labels[coo.col])
        # labels are component minima: label[v] <= v
        assert np.all(labels <= np.arange(n))


class TestPageRank:
    def test_matches_networkx(self):
        import networkx as nx

        G = nx.gnp_random_graph(70, 0.08, seed=5, directed=True)
        A = nx.to_scipy_sparse_array(G, format="coo")
        # our convention is A[i, j] = edge j -> i
        coo = COOMatrix((70, 70), A.col.astype(np.int64),
                        A.row.astype(np.int64), A.data.astype(float))
        ours, _ = pagerank(coo, tol=1e-12)
        ref = nx.pagerank(G, alpha=0.85, tol=1e-12, max_iter=500)
        refv = np.array([ref[i] for i in range(70)])
        assert np.allclose(ours, refv, atol=1e-7)

    def test_sums_to_one(self):
        coo = random_graph_coo(50, 4.0, seed=6)
        r, _ = pagerank(coo)
        assert r.sum() == pytest.approx(1.0)
        assert np.all(r > 0)

    def test_ring_is_uniform(self):
        n = 12
        coo = COOMatrix((n, n),
                        np.arange(n),
                        np.roll(np.arange(n), 1))
        r, _ = pagerank(coo, tol=1e-14)
        assert np.allclose(r, 1.0 / n)

    def test_dangling_vertices_handled(self):
        # vertex 2 has no out-edges; mass must still sum to 1
        coo = COOMatrix((3, 3), np.array([1, 2]), np.array([0, 1]))
        r, _ = pagerank(coo)
        assert r.sum() == pytest.approx(1.0)

    def test_converges(self):
        coo = random_graph_coo(100, 5.0, seed=7)
        _, iters = pagerank(coo, tol=1e-10, max_iter=300)
        assert iters < 300

    # weighted 4-node example, hand-checkable (A[i, j] is edge j -> i):
    #   0 -> 1 (w=3), 0 -> 2 (w=1), 1 -> 3 (w=2), 2 -> 3 (w=1); 3 dangling
    WEIGHTED4 = COOMatrix(
        (4, 4),
        np.array([1, 2, 3, 3]),
        np.array([0, 0, 1, 2]),
        np.array([3.0, 1.0, 2.0, 1.0]))

    def test_weighted_4node_matches_hand_solution(self):
        # vertex 0 spreads 3/4 of its rank to 1 and 1/4 to 2 (weight
        # proportional, not 1/2 each); the exact stationary vector
        # solves (I - d*(P + dangling/n)) r = (1-d)/n * 1
        d = 0.85
        P = np.zeros((4, 4))
        P[1, 0], P[2, 0] = 3 / 4, 1 / 4
        P[3, 1] = 1.0
        P[3, 2] = 1.0
        E = np.zeros((4, 4))
        E[:, 3] = 1.0 / 4                      # dangling redistribution
        want = np.linalg.solve(np.eye(4) - d * (P + E),
                               np.full(4, (1 - d) / 4))
        want /= want.sum()
        r, _ = pagerank(self.WEIGHTED4, damping=d, tol=1e-14)
        assert np.allclose(r, want, atol=1e-10)
        # weight-proportional split: r1/r2 reflects the 3:1 edge weights
        assert r[1] > r[2]

    def test_weighted_matches_networkx(self):
        import networkx as nx

        coo = self.WEIGHTED4
        G = nx.DiGraph()
        G.add_nodes_from(range(4))
        for i, j, w in zip(coo.row, coo.col, coo.val):
            G.add_edge(int(j), int(i), weight=float(w))
        ref = nx.pagerank(G, alpha=0.85, tol=1e-12, max_iter=500)
        refv = np.array([ref[i] for i in range(4)])
        r, _ = pagerank(coo, tol=1e-14)
        assert np.allclose(r, refv, atol=1e-8)

    def test_duplicate_entries_merge_not_inflate(self):
        # the same edge stored twice (1.5 + 1.5) must equal one 3.0
        # edge — duplicates used to inflate the out-degree count
        dup = COOMatrix(
            (4, 4),
            np.array([1, 1, 2, 3, 3]),
            np.array([0, 0, 0, 1, 2]),
            np.array([1.5, 1.5, 1.0, 2.0, 1.0]))
        r_dup, _ = pagerank(dup, tol=1e-14)
        r_ref, _ = pagerank(self.WEIGHTED4, tol=1e-14)
        assert np.allclose(r_dup, r_ref, atol=1e-12)

    def test_explicit_zero_edge_keeps_vertex_dangling(self):
        # a weight-0 edge is no edge: vertex 3 stays dangling, so the
        # ranks match the matrix without the explicit zero
        withzero = COOMatrix(
            (4, 4),
            np.array([1, 2, 3, 3, 0]),
            np.array([0, 0, 1, 2, 3]),
            np.array([3.0, 1.0, 2.0, 1.0, 0.0]))
        r_zero, _ = pagerank(withzero, tol=1e-14)
        r_ref, _ = pagerank(self.WEIGHTED4, tol=1e-14)
        assert np.allclose(r_zero, r_ref, atol=1e-12)

    def test_bad_damping(self):
        with pytest.raises(ShapeError):
            pagerank(COOMatrix.empty((2, 2)), damping=1.0)

    def test_nonsquare_rejected(self):
        with pytest.raises(ShapeError):
            pagerank(COOMatrix.empty((2, 3)))


class TestSSSP:
    def weighted_graph(self, n, seed):
        import networkx as nx

        rng = np.random.default_rng(seed)
        G = nx.gnp_random_graph(n, 5.0 / n, seed=seed)
        for u, v in G.edges:
            G[u][v]["weight"] = float(rng.random() + 0.05)
        A = nx.to_scipy_sparse_array(G, format="coo", weight="weight")
        coo = COOMatrix((n, n), A.row.astype(np.int64),
                        A.col.astype(np.int64), A.data.astype(float))
        return G, coo

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_dijkstra(self, seed):
        import networkx as nx

        G, coo = self.weighted_graph(90, seed)
        d = sssp(coo, 0, nt=16)
        ref = nx.single_source_dijkstra_path_length(G, 0)
        want = np.full(90, np.inf)
        for v, dist in ref.items():
            want[v] = dist
        assert np.allclose(d, want)

    def test_unweighted_equals_bfs_levels(self):
        from repro.graphs import bfs_levels

        coo = random_graph_coo(80, 4.0, seed=3)
        d = sssp(coo, 0, nt=4)
        levels = bfs_levels(coo, 0)
        finite = levels >= 0
        assert np.allclose(d[finite], levels[finite])
        assert np.all(np.isinf(d[~finite]))

    def test_source_distance_zero(self):
        _, coo = self.weighted_graph(40, 4)
        assert sssp(coo, 7, nt=4)[7] == 0.0

    def test_unreachable_inf(self):
        coo = COOMatrix((4, 4), np.array([1]), np.array([0]),
                        np.array([2.0]))
        d = sssp(coo, 0, nt=2)
        assert d[1] == 2.0 and np.isinf(d[2]) and np.isinf(d[3])

    def test_source_out_of_range(self):
        with pytest.raises(ShapeError):
            sssp(COOMatrix.empty((4, 4)), 4, nt=2)

    def test_nonsquare_rejected(self):
        with pytest.raises(ShapeError):
            sssp(COOMatrix.empty((3, 4)), 0, nt=2)

    def test_tiny_improvement_not_dropped(self):
        # direct edge 0->2 costs 4096; the two-hop path costs one ulp
        # less (2^-41).  The old absolute 1e-12 slack dropped the
        # improvement; exact strict comparison must take it.
        shorter = np.nextafter(4096.0, 0.0)        # 4096 - 2^-41
        coo = COOMatrix(
            (3, 3),
            np.array([2, 1, 2]),
            np.array([0, 0, 1]),
            np.array([4096.0, 2048.0, shorter - 2048.0]))
        d = sssp(coo, 0, nt=2)
        assert d[2] == shorter

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("scale", [1.0, 1e9])
    def test_property_matches_scipy_dijkstra(self, seed, scale):
        # random directed non-negative weighted graphs, small and
        # large weight scales, vs the independent csgraph oracle
        from scipy.sparse import csr_array
        from scipy.sparse.csgraph import dijkstra

        rng = np.random.default_rng(seed)
        n = int(rng.integers(20, 70))
        n_edges = int(rng.integers(n, 4 * n))
        rows = rng.integers(0, n, n_edges)
        cols = rng.integers(0, n, n_edges)
        keep = rows != cols
        vals = (rng.random(keep.sum()) + 0.05) * scale
        coo = COOMatrix((n, n), rows[keep], cols[keep],
                        vals).sum_duplicates()
        d = sssp(coo, 0, nt=4)
        # csgraph reads G[i, j] as edge i -> j; our convention is the
        # transpose (A[i, j] is j -> i)
        at = coo.transpose()
        G = csr_array((at.val, (at.row, at.col)), shape=(n, n))
        want = dijkstra(G, directed=True, indices=0)
        assert np.allclose(d, want, rtol=1e-12, atol=0)

    def test_max_rounds_caps_work(self):
        # a path graph needs n-1 rounds; capping at 1 leaves the tail inf
        n = 6
        coo = COOMatrix((n, n), np.arange(1, n), np.arange(n - 1),
                        np.ones(n - 1))
        d = sssp(coo, 0, nt=2, max_rounds=1)
        assert d[1] == 1.0 and np.isinf(d[2])
