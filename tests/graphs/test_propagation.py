"""Block propagation on TileSpMM: multi-personalization PageRank and
label propagation."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.formats import COOMatrix
from repro.graphs import label_propagation, multi_pagerank, pagerank

from ..conftest import random_graph_coo


@pytest.fixture(scope="module")
def graph():
    return random_graph_coo(60, avg_degree=4.0, seed=17)


class TestMultiPageRank:
    def test_uniform_column_reduces_to_classic_pagerank(self, graph):
        n = graph.shape[0]
        r_ref, it_ref = pagerank(graph)
        V = np.full((n, 1), 1.0 / n)
        R, it = multi_pagerank(graph, V)
        assert it == it_ref
        assert np.array_equal(R[:, 0].copy().view(np.uint64),
                              r_ref.view(np.uint64))

    def test_seed_vertices_one_column_each(self, graph):
        R, it = multi_pagerank(graph, np.array([0, 5, 9]))
        n = graph.shape[0]
        assert R.shape == (n, 3) and it >= 1
        assert np.allclose(R.sum(axis=0), 1.0)
        # personalization localises mass: the seed scores highest in
        # its own column far more often than not
        assert R[0, 0] > R[0, 1] or R[5, 1] > R[5, 0]

    def test_columns_match_independent_runs(self, graph):
        # running B personalizations together is exactly running them
        # one at a time (each column converges on its own tolerance,
        # but the block iterates until the *last* column converges —
        # extra iterations leave a converged column within tol)
        seeds = np.array([2, 11])
        R, _ = multi_pagerank(graph, seeds, tol=1e-12)
        for j, s in enumerate(seeds):
            Rj, _ = multi_pagerank(graph, np.array([s]), tol=1e-12)
            assert np.allclose(R[:, j], Rj[:, 0], atol=1e-9)

    def test_validation(self, graph):
        n = graph.shape[0]
        with pytest.raises(ShapeError):
            multi_pagerank(graph, np.array([n + 3]))
        with pytest.raises(ShapeError):
            multi_pagerank(graph, np.zeros((n, 2)))   # zero-mass column
        with pytest.raises(ShapeError):
            multi_pagerank(graph, np.ones((n + 1, 2)))
        with pytest.raises(ShapeError):
            multi_pagerank(graph, np.array([0]), damping=1.5)
        with pytest.raises(ShapeError):
            multi_pagerank(np.ones((3, 4)), np.array([0]))

    def test_empty_matrix(self):
        R, it = multi_pagerank(COOMatrix.empty((0, 0)), np.zeros((0, 1)))
        assert R.shape == (0, 1) and it == 0


class TestLabelPropagation:
    def two_cliques(self):
        # two 5-cliques joined by one weak bridge edge
        n = 10
        rows, cols = [], []
        for block in (range(0, 5), range(5, 10)):
            for i in block:
                for j in block:
                    if i != j:
                        rows.append(i)
                        cols.append(j)
        rows += [5, 4]
        cols += [4, 5]
        vals = np.ones(len(rows))
        return COOMatrix((n, n), np.array(rows), np.array(cols), vals)

    def test_two_cliques_split_on_seeds(self):
        A = self.two_cliques()
        seeds = np.full(10, -1, dtype=np.int64)
        seeds[0] = 7        # arbitrary label ids, densely re-indexed
        seeds[9] = 3
        labels, it = label_propagation(A, seeds)
        assert it >= 1
        assert np.all(labels[:5] == 7)
        assert np.all(labels[5:] == 3)

    def test_unreached_vertices_stay_unlabelled(self):
        # vertex 3 is isolated: no label mass can ever reach it
        A = COOMatrix((4, 4), np.array([1, 2]), np.array([0, 1]),
                      np.ones(2))
        seeds = np.array([0, -1, -1, -1], dtype=np.int64)
        labels, _ = label_propagation(A, seeds)
        assert labels[0] == 0 and labels[3] == -1

    def test_validation(self, graph):
        n = graph.shape[0]
        with pytest.raises(ShapeError):
            label_propagation(graph, np.full(n + 1, -1, dtype=np.int64))
        with pytest.raises(ShapeError):
            label_propagation(graph, np.full(n, -1, dtype=np.int64))
