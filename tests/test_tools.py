"""Tests for the command-line utilities (``python -m repro.tools``)."""

import numpy as np
import pytest

from repro.formats import read_matrix_market, write_matrix_market
from repro.matrices import banded
from repro.tools import build_parser, main


@pytest.fixture
def mtx(tmp_path):
    path = tmp_path / "m.mtx"
    write_matrix_market(banded(300, seed=1), path)
    return str(path)


class TestInfo:
    def test_prints_tile_stats(self, mtx, capsys):
        assert main(["info", mtx]) == 0
        out = capsys.readouterr().out
        assert "nnz=" in out
        assert "nt=16" in out and "nt=64" in out


class TestBfs:
    def test_runs_and_reports(self, mtx, capsys):
        assert main(["bfs", mtx, "0"]) == 0
        out = capsys.readouterr().out
        assert "reached 300/300" in out
        assert "kernel mix" in out

    def test_gpu_flag(self, mtx, capsys):
        assert main(["bfs", mtx, "0", "--gpu", "rtx3060"]) == 0
        assert "RTX 3060" in capsys.readouterr().out


class TestSpmspv:
    def test_runs_and_reports_launches(self, mtx, capsys):
        assert main(["spmspv", mtx, "0.05"]) == 0
        out = capsys.readouterr().out
        assert "tile_spmspv" in out
        assert "total" in out

    def test_nt_flag(self, mtx, capsys):
        assert main(["spmspv", mtx, "0.05", "--nt", "32"]) == 0
        assert "nt=32" in capsys.readouterr().out


class TestGenerate:
    @pytest.mark.parametrize("kind", ["fem", "banded", "mesh2d", "rmat",
                                      "road", "er"])
    def test_kinds(self, kind, tmp_path, capsys):
        out_path = tmp_path / f"{kind}.mtx"
        assert main(["generate", kind, str(out_path), "--n", "256"]) == 0
        m = read_matrix_market(out_path)
        assert m.nnz > 0

    def test_unknown_kind(self, tmp_path):
        assert main(["generate", "nope",
                     str(tmp_path / "x.mtx")]) == 2

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.mtx", tmp_path / "b.mtx"
        main(["generate", "er", str(a), "--n", "128", "--seed", "7"])
        main(["generate", "er", str(b), "--n", "128", "--seed", "7"])
        ma, mb = read_matrix_market(a), read_matrix_market(b)
        assert np.array_equal(ma.row, mb.row)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
