"""ShardedSpMSpV: equivalence, shard-count invariance, modeled bytes."""

import numpy as np
import pytest

from repro.core import TileSpMSpV
from repro.gpusim import Device, RTX3090
from repro.runtime import PlanCache, create_operator
from repro.semiring import MAX_TIMES, MIN_PLUS, OR_AND, PLUS_TIMES
from repro.shards import ShardedSpMSpV, ShardedTiledMatrix
from repro.vectors import SparseVector, random_sparse_vector

from ..conftest import random_coo


@pytest.fixture
def coo():
    return random_coo(70, 70, 0.08, seed=5)


def or_and_inputs(coo, x):
    bits = coo.val.copy().view(np.uint64)
    coo2 = type(coo)(coo.shape, coo.row, coo.col, bits)
    x2 = SparseVector(x.n, x.indices, x.values.view(np.uint64))
    return coo2, x2


class TestEquivalence:
    @pytest.mark.parametrize(
        "sr", [PLUS_TIMES, OR_AND, MIN_PLUS, MAX_TIMES],
        ids=lambda s: s.name)
    def test_matches_tilespmspv(self, coo, sr):
        x = random_sparse_vector(70, 0.2, seed=6)
        if sr.dtype.kind == "u":
            coo, x = or_and_inputs(coo, x)
        y_ref = TileSpMSpV(coo, semiring=sr).multiply(
            x, output="dense")
        y = ShardedSpMSpV(coo, semiring=sr, n_shards=3).multiply(
            x, output="dense")
        if sr.dtype.kind == "u":
            assert np.array_equal(y, y_ref)
        else:
            assert np.allclose(y, y_ref)

    def test_sparse_output_and_dense_input(self, coo):
        xd = np.zeros(70)
        xd[[3, 10, 42]] = [1.0, 2.0, 0.5]
        op = ShardedSpMSpV(coo, n_shards=4)
        y = op.multiply(xd)
        y_ref = TileSpMSpV(coo).multiply(xd)
        assert np.allclose(y.to_dense(), y_ref.to_dense())

    def test_mask_and_complement(self, coo):
        x = random_sparse_vector(70, 0.2, seed=7)
        mask = np.zeros(70, dtype=bool)
        mask[::3] = True
        for comp in (False, True):
            y = ShardedSpMSpV(coo, n_shards=3).multiply(
                x, output="dense", mask=mask, mask_complement=comp)
            y_ref = TileSpMSpV(coo).multiply(
                x, output="dense", mask=mask, mask_complement=comp)
            assert np.allclose(y, y_ref)

    def test_batch_matches_looped(self, coo):
        xs = [random_sparse_vector(70, s, seed=8 + i)
              for i, s in enumerate((0.1, 0.3, 0.02))]
        op = ShardedSpMSpV(coo, n_shards=3)
        ys = op.multiply_batch(xs, output="dense")   # (B, m)
        for x, y in zip(xs, ys):
            assert np.allclose(y, TileSpMSpV(coo).multiply(
                x, output="dense"))

    def test_rectangular(self):
        coo = random_coo(90, 40, 0.1, seed=9)
        x = random_sparse_vector(40, 0.3, seed=10)
        y = ShardedSpMSpV(coo, n_shards=4).multiply(x, output="dense")
        y_ref = TileSpMSpV(coo).multiply(x, output="dense")
        assert np.allclose(y, y_ref)


class TestShardCountInvariance:
    @pytest.mark.parametrize("n_shards", [2, 4, 7])
    def test_bit_identical_to_single_shard(self, coo, n_shards):
        x = random_sparse_vector(70, 0.2, seed=11)
        y1 = ShardedSpMSpV(coo, n_shards=1).multiply(x, output="dense")
        yn = ShardedSpMSpV(coo, n_shards=n_shards).multiply(
            x, output="dense")
        assert np.array_equal(y1.view(np.uint64), yn.view(np.uint64))


class TestModeledBytes:
    def test_combine_bytes_formula(self, coo):
        dev = Device(RTX3090)
        op = ShardedSpMSpV(coo, n_shards=4, device=dev)
        op.multiply(random_sparse_vector(70, 0.2, seed=12))
        # tags may carry ;device=D;worker=W suffixes under REPRO_WORKERS
        executed = [int(r.tag.split(";")[0].split("=")[1])
                    for r in dev.timeline
                    if r.name == "sharded_spmspv_shard"]
        combine = [r for r in dev.timeline
                   if r.name == "sharded_combine"]
        assert len(combine) == 1
        expect = 2.0 * 8 * sum(op.matrix.strip_rows(s)
                               for s in executed)
        assert combine[0].counters.global_bytes == expect

    def test_schedule_launch_present(self, coo):
        dev = Device(RTX3090)
        ShardedSpMSpV(coo, n_shards=4, device=dev).multiply(
            random_sparse_vector(70, 0.2, seed=12))
        names = [r.name for r in dev.timeline]
        assert names[0] == "sharded_schedule"
        assert names[-1] == "sharded_combine"

    def test_shard_launches_tagged(self, coo):
        dev = Device(RTX3090)
        ShardedSpMSpV(coo, n_shards=4, device=dev).multiply(
            random_sparse_vector(70, 0.2, seed=12))
        for r in dev.timeline:
            if r.name in ("sharded_spmspv_shard", "shard_load"):
                assert r.tag and r.tag.startswith("shard=")


class TestResidencyAndPlans:
    def test_evicted_shard_invalidates_plan(self, coo):
        cache = PlanCache(maxsize=32)
        op = ShardedSpMSpV(coo, n_shards=4, budget_bytes=1,
                           plan_cache=cache)
        x = random_sparse_vector(70, 0.3, seed=13)
        y1 = op.multiply(x, output="dense")
        assert cache.stats()["removals"] > 0      # evictions drop plans
        y2 = op.multiply(x, output="dense")       # rebuilt, same result
        assert np.array_equal(y1, y2)
        s = op.stats()
        assert s["evictions"] > 0
        assert s["loaded_bytes"] > 0

    def test_warm_resident_set_hits(self, coo):
        op = ShardedSpMSpV(coo, n_shards=3)      # unbudgeted
        x = random_sparse_vector(70, 0.3, seed=13)
        op.multiply(x)
        op.multiply(x)
        s = op.stats()
        assert s["hits"] >= 3
        assert s["evictions"] == 0

    def test_stats_merge_scheduler_and_resident(self, coo):
        op = ShardedSpMSpV(coo, n_shards=3)
        op.multiply(random_sparse_vector(70, 0.2, seed=14))
        s = op.stats()
        for key in ("schedule_calls", "shards_executed",
                    "shards_skipped", "loads", "resident_bytes"):
            assert key in s


class TestRegistry:
    def test_create_operator(self, coo):
        op = create_operator("sharded-spmspv", coo)
        assert isinstance(op, ShardedSpMSpV)
        x = random_sparse_vector(70, 0.2, seed=15)
        assert np.allclose(
            op.multiply(x, output="dense"),
            TileSpMSpV(coo).multiply(x, output="dense"))

    def test_accepts_prebuilt_sharded_matrix(self, coo):
        sm = ShardedTiledMatrix.from_coo(coo, nt=16, n_shards=3)
        op = ShardedSpMSpV(sm)
        assert op.matrix is sm
