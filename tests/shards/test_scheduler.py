"""The shard scheduler: occupancy-bitmap intersection and skip counts."""

import numpy as np

from repro.formats import COOMatrix
from repro.shards import ShardedTiledMatrix, ShardScheduler


def block_diag_matrix(nt=16, blocks=4):
    """Block-diagonal: shard s only touches tile column s."""
    rows, cols = [], []
    for b in range(blocks):
        base = b * nt
        rows += [base, base + 1]
        cols += [base, base + 2]
    n = blocks * nt
    return COOMatrix((n, n),
                     np.asarray(rows, dtype=np.int64),
                     np.asarray(cols, dtype=np.int64),
                     np.ones(len(rows)))


class TestSkipRule:
    def test_only_intersecting_shards_execute(self):
        sm = ShardedTiledMatrix.from_coo(block_diag_matrix(), nt=16,
                                         n_shards=4)
        sched = ShardScheduler(sm)
        # frontier active in tile column 2 only -> only shard 2 runs
        executed = sched.schedule(np.array([2]))
        assert list(executed) == [2]
        s = sched.stats()
        assert s["shards_executed"] == 1
        assert s["shards_skipped"] == 3

    def test_all_columns_active_runs_everything(self):
        sm = ShardedTiledMatrix.from_coo(block_diag_matrix(), nt=16,
                                         n_shards=4)
        sched = ShardScheduler(sm)
        executed = sched.schedule(np.arange(4))
        assert list(executed) == [0, 1, 2, 3]
        assert sched.stats()["shards_skipped"] == 0

    def test_empty_frontier_skips_everything(self):
        sm = ShardedTiledMatrix.from_coo(block_diag_matrix(), nt=16,
                                         n_shards=4)
        sched = ShardScheduler(sm)
        executed = sched.schedule(np.array([], dtype=np.int64))
        assert executed.size == 0
        assert sched.stats()["shards_skipped"] == 4

    def test_stats_accumulate_across_calls(self):
        sm = ShardedTiledMatrix.from_coo(block_diag_matrix(), nt=16,
                                         n_shards=4)
        sched = ShardScheduler(sm)
        sched.schedule(np.array([0]))
        sched.schedule(np.array([1, 3]))
        s = sched.stats()
        assert s["schedule_calls"] == 2
        assert s["shards_executed"] == 3
        assert s["shards_skipped"] == 5

    def test_schedule_counters_charge_metadata(self):
        sm = ShardedTiledMatrix.from_coo(block_diag_matrix(), nt=16,
                                         n_shards=4)
        c = ShardScheduler(sm).schedule_counters()
        assert c.coalesced_read_bytes == \
            4 * sm.metadata_nbytes_per_shard()
        assert c.word_ops == sm.occupancy.size
