"""Sharded SpMM: strip-by-strip dispatch, shard/worker invariance,
and the column-slice equivalence against the sharded single-vector
path.

The sharded engine folds every nonzero of a strip in stored order,
while the unsharded hybrid folds its extracted COO side after the
tiled part — value-equal but not bit-equal when the side is nonempty.
The invariants pinned here are the ones the docstring promises:
bit-identity across shard counts and worker counts, allclose against
the unsharded engine (exact for ``or_and``: OR is order-independent),
and bit-exact column slices against sharded single-vector multiplies.
"""

import numpy as np
import pytest

from repro.core import TileSpMM
from repro.gpusim import Device
from repro.parallel import ParallelConfig
from repro.semiring import MIN_PLUS, OR_AND, PLUS_TIMES
from repro.shards import ShardedSpMSpV, ShardedTiledMatrix
from repro.vectors import SparseVector, random_sparse_vector

from ..conftest import random_coo

N = 96
NT = 8


@pytest.fixture(scope="module")
def coo():
    return random_coo(N, N, 0.08, seed=21)


def vectors(B, seed=31, uint=False):
    vecs = [random_sparse_vector(N, 0.1 + 0.1 * b, seed=seed + b)
            for b in range(B)]
    if uint:
        vecs = [SparseVector(v.n, v.indices, v.values.view(np.uint64))
                for v in vecs]
    return vecs


def sharded(coo, n_shards, sr=PLUS_TIMES, parallel=None, device=None):
    return ShardedSpMSpV(coo, nt=NT, semiring=sr, n_shards=n_shards,
                         parallel=parallel, device=device)


class TestInvariance:
    @pytest.mark.parametrize("sr", [PLUS_TIMES, MIN_PLUS, OR_AND],
                             ids=lambda s: s.name)
    def test_bit_identical_across_shard_counts(self, coo, sr):
        uint = sr.dtype.kind == "u"
        if uint:
            coo = type(coo)(coo.shape, coo.row, coo.col,
                            coo.val.copy().view(np.uint64))
        vecs = vectors(3, uint=uint)
        ys = [sharded(coo, s, sr).multiply_block(vecs, output="dense")
              for s in (1, 3, 5)]
        for y in ys[1:]:
            if uint:
                assert np.array_equal(y, ys[0])
            else:
                assert np.array_equal(y.view(np.uint64),
                                      ys[0].view(np.uint64))

    @pytest.mark.parametrize("workers", [2, 4])
    def test_bit_identical_across_worker_counts(self, coo, workers):
        vecs = vectors(3)
        y1 = sharded(coo, 4).multiply_block(vecs, output="dense")
        cfg = ParallelConfig(workers=workers, backend="thread")
        yw = sharded(coo, 4, parallel=cfg).multiply_block(
            vecs, output="dense")
        assert np.array_equal(yw.view(np.uint64), y1.view(np.uint64))

    def test_allclose_to_unsharded_exact_for_or_and(self, coo):
        vecs = vectors(3)
        y_flat = TileSpMM(coo, nt=NT).multiply_block(
            vecs, output="dense")
        y = sharded(coo, 3).multiply_block(vecs, output="dense")
        assert np.allclose(y, y_flat)
        ucoo = type(coo)(coo.shape, coo.row, coo.col,
                         coo.val.copy().view(np.uint64))
        uvecs = vectors(3, uint=True)
        yu_flat = TileSpMM(ucoo, nt=NT, semiring=OR_AND).multiply_block(
            uvecs, output="dense")
        yu = sharded(ucoo, 3, OR_AND).multiply_block(
            uvecs, output="dense")
        assert np.array_equal(yu, yu_flat)

    def test_column_slices_match_sharded_single_vector(self, coo):
        vecs = vectors(3)
        eng = sharded(coo, 3)
        Y = eng.multiply_block(vecs, output="dense")
        for j, v in enumerate(vecs):
            y_ref = eng.multiply(v, output="dense")
            assert np.array_equal(Y[:, j].copy().view(np.uint64),
                                  y_ref.view(np.uint64))


class TestDispatch:
    def test_tilespmm_on_sharded_matrix_delegates(self, coo):
        vecs = vectors(2)
        sm = ShardedTiledMatrix.from_coo(coo, nt=NT, n_shards=3)
        op = TileSpMM(sm, nt=NT)
        y = op.multiply_block(vecs, output="dense")
        y_ref = sharded(coo, 3).multiply_block(vecs, output="dense")
        assert np.array_equal(y.view(np.uint64), y_ref.view(np.uint64))

    def test_launch_structure(self, coo):
        dev = Device()
        eng = sharded(coo, 3, device=dev)
        eng.multiply_block(vectors(2), tag="t0")
        names = [r.name for r in dev.timeline]
        assert names.count("sharded_schedule") == 1
        assert names.count("sharded_spmm_shard") == 3
        assert names.count("sharded_combine") == 1
        shard_tags = [r.tag for r in dev.timeline
                      if r.name == "sharded_spmm_shard"]
        assert all(t and "t0" in t for t in shard_tags)

    def test_sparse_output(self, coo):
        vecs = vectors(2)
        ys = sharded(coo, 3).multiply_block(vecs, output="sparse")
        Y = sharded(coo, 3).multiply_block(vecs, output="dense")
        assert len(ys) == 2
        for j, sv in enumerate(ys):
            assert np.array_equal(sv.to_dense(), Y[:, j])

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_parallel_backends_agree(self, coo, backend):
        vecs = vectors(3)
        cfg = ParallelConfig(workers=2, backend=backend)
        y = sharded(coo, 4, parallel=cfg).multiply_block(
            vecs, output="dense")
        y_ref = sharded(coo, 4).multiply_block(vecs, output="dense")
        assert np.array_equal(y.view(np.uint64),
                              y_ref.view(np.uint64))
