"""Shard stores and the byte-budgeted resident-set manager."""

import pickle
import threading

import numpy as np

from repro.shards import (DirectoryShardStore, InMemoryShardStore,
                          ResidentSetManager)
from repro.tiles import TiledMatrix

from ..conftest import random_coo


def tiled(seed, m=48, n=48):
    return TiledMatrix.from_coo(random_coo(m, n, 0.1, seed=seed), 16)


class TestInMemoryStore:
    def test_put_get_nbytes(self):
        store = InMemoryShardStore()
        t = tiled(1)
        store.put(0, t)
        assert store.get(0) is t
        assert store.nbytes(0) == t.nbytes()
        assert store.shard_ids == [0]


class TestDirectoryStore:
    def test_round_trip(self, tmp_path):
        store = DirectoryShardStore(tmp_path)
        a, b = tiled(1), tiled(2)
        store.put(0, a)
        store.put(3, b)
        assert store.shard_ids == [0, 3]
        assert store.nbytes(0) == a.nbytes()
        back = store.get(3)
        assert np.allclose(back.to_dense(), b.to_dense())

    def test_reattach_fresh_instance(self, tmp_path):
        DirectoryShardStore(tmp_path).put(0, tiled(1))
        fresh = DirectoryShardStore(tmp_path)
        assert fresh.shard_ids == [0]
        assert np.allclose(fresh.get(0).to_dense(), tiled(1).to_dense())

    def test_attach_returns_independent_store(self, tmp_path):
        store = DirectoryShardStore(tmp_path)
        store.put(0, tiled(1))
        other = store.attach()
        assert other is not store
        assert other.root == store.root
        assert np.allclose(other.get(0).to_dense(),
                           store.get(0).to_dense())

    def test_pickle_ships_root_only(self, tmp_path):
        store = DirectoryShardStore(tmp_path)
        store.put(2, tiled(4))
        clone = pickle.loads(pickle.dumps(store))
        assert clone.shard_ids == [2]
        assert clone.nbytes(2) == store.nbytes(2)

    def test_two_stores_serve_disjoint_shards_concurrently(
            self, tmp_path):
        """Two attached stores over one directory serve disjoint shard
        sets from concurrent threads: every worker gets its own
        read-only memmaps, no shared mutable state (the regression the
        parallel executor's per-worker slices depend on)."""
        writer = DirectoryShardStore(tmp_path)
        tiles = {sid: tiled(sid + 1) for sid in range(8)}
        for sid, t in tiles.items():
            writer.put(sid, t)
        stores = [writer.attach(), writer.attach()]
        shard_sets = ([0, 2, 4, 6], [1, 3, 5, 7])
        errors = []
        barrier = threading.Barrier(2)

        def reader(store, sids):
            try:
                barrier.wait(timeout=10)
                for _ in range(3):
                    for sid in sids:
                        got = store.get(sid).to_dense()
                        want = tiles[sid].to_dense()
                        if not np.array_equal(got, want):
                            errors.append(f"shard {sid} corrupted")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(repr(exc))

        threads = [threading.Thread(target=reader, args=(st, sids))
                   for st, sids in zip(stores, shard_sets)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors, errors


class TestResidentSetManager:
    def _manager(self, n_shards=4, budget_shards=2):
        store = InMemoryShardStore()
        tiles = [tiled(s) for s in range(n_shards)]
        for sid, t in enumerate(tiles):
            store.put(sid, t)
        budget = None
        if budget_shards is not None:
            budget = sum(t.nbytes() for t in tiles[:budget_shards])
        return ResidentSetManager(store, budget), tiles

    def test_miss_then_hit(self):
        rsm, tiles = self._manager()
        t, loaded, evicted = rsm.get(0)
        assert loaded == tiles[0].nbytes() and evicted == 0
        t2, loaded2, _ = rsm.get(0)
        assert t2 is t and loaded2 == 0
        s = rsm.stats()
        assert (s["loads"], s["hits"]) == (1, 1)

    def test_budget_evicts_lru_first(self):
        rsm, tiles = self._manager(n_shards=3, budget_shards=2)
        rsm.get(0)
        rsm.get(1)
        rsm.get(0)                      # refresh 0: now 1 is the LRU
        _, _, evicted = rsm.get(2)
        assert evicted == tiles[1].nbytes()
        assert rsm.resident_ids == [0, 2]
        assert rsm.resident_bytes <= rsm.budget_bytes

    def test_pinned_shard_never_evicted(self):
        rsm, tiles = self._manager(n_shards=4, budget_shards=1)
        rsm.get(0)
        rsm.pin(0)
        rsm.get(1)
        rsm.get(2)
        assert 0 in rsm.resident_ids   # over budget but pinned
        rsm.unpin(0)                     # unpin re-enforces the budget
        assert 0 not in rsm.resident_ids

    def test_evict_callbacks_fire(self):
        rsm, _ = self._manager(n_shards=2, budget_shards=None)
        seen = []
        rsm.evict_callbacks.append(seen.append)
        rsm.get(0)
        rsm.get(1)
        rsm.evict(0)
        rsm.clear()
        assert seen == [0, 1]

    def test_unbudgeted_keeps_everything(self):
        rsm, tiles = self._manager(n_shards=4, budget_shards=None)
        for sid in range(4):
            rsm.get(sid)
        assert rsm.resident_ids == [0, 1, 2, 3]
        assert rsm.stats()["evictions"] == 0
        assert rsm.resident_bytes == sum(t.nbytes() for t in tiles)
