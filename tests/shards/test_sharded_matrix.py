"""Row-strip partitioning: structure, alignment, persistence."""

import numpy as np
import pytest

from repro.errors import TileError
from repro.shards import DirectoryShardStore, ShardedTiledMatrix

from ..conftest import random_coo


@pytest.fixture
def coo():
    return random_coo(70, 50, 0.1, seed=3)


class TestPartitioning:
    def test_default_two_shards(self, coo):
        sm = ShardedTiledMatrix.from_coo(coo, nt=16)
        assert sm.n_shards == 2
        assert sm.shape == (70, 50)
        assert sm.nnz == coo.sum_duplicates().nnz

    @pytest.mark.parametrize("n_shards", [1, 2, 4, 7])
    def test_strips_cover_all_rows(self, coo, n_shards):
        sm = ShardedTiledMatrix.from_coo(coo, nt=16, n_shards=n_shards)
        assert sum(sm.strip_rows(s) for s in range(sm.n_shards)) == 70

    def test_strips_are_tile_row_aligned(self, coo):
        sm = ShardedTiledMatrix.from_coo(coo, nt=16, n_shards=3)
        for sid in range(sm.n_shards - 1):
            assert sm.strip_rows(sid) % 16 == 0

    def test_n_shards_clamped_to_tile_rows(self, coo):
        # 70 rows / nt=16 -> 5 tile rows; 100 strips is impossible
        sm = ShardedTiledMatrix.from_coo(coo, nt=16, n_shards=100)
        assert sm.n_shards <= 5

    def test_rows_per_shard(self, coo):
        sm = ShardedTiledMatrix.from_coo(coo, nt=16, rows_per_shard=32)
        assert sm.n_shards == 3             # ceil(70 / 32)
        assert sm.strip_rows(0) == 32
        assert sm.strip_rows(2) == 70 - 64  # ragged tail strip

    def test_to_coo_round_trip(self, coo):
        sm = ShardedTiledMatrix.from_coo(coo, nt=16, n_shards=4)
        assert np.allclose(sm.to_coo().to_dense(), coo.to_dense())

    def test_duplicates_canonicalized_before_split(self):
        # same (row, col) twice: every shard count must see the sum
        from repro.formats import COOMatrix
        coo = COOMatrix((32, 32),
                        np.array([3, 3, 20], dtype=np.int64),
                        np.array([5, 5, 7], dtype=np.int64),
                        np.array([1.0, 2.0, 4.0]))
        for n in (1, 2):
            sm = ShardedTiledMatrix.from_coo(coo, nt=16, n_shards=n)
            assert sm.nnz == 2
            assert sm.to_coo().to_dense()[3, 5] == 3.0


class TestValidation:
    def test_both_split_args_rejected(self, coo):
        with pytest.raises(TileError):
            ShardedTiledMatrix.from_coo(coo, nt=16, n_shards=2,
                                        rows_per_shard=32)

    def test_unaligned_rows_per_shard_rejected(self, coo):
        with pytest.raises(TileError):
            ShardedTiledMatrix.from_coo(coo, nt=16, rows_per_shard=20)

    def test_bad_tile_size_rejected(self, coo):
        with pytest.raises(TileError):
            ShardedTiledMatrix.from_coo(coo, nt=13)


class TestPersistence:
    def test_open_reattaches(self, coo, tmp_path):
        sm = ShardedTiledMatrix.from_coo(coo, nt=16, n_shards=3,
                                         store_dir=tmp_path)
        back = ShardedTiledMatrix.open(tmp_path)
        assert back.n_shards == 3
        assert back.shape == sm.shape
        assert back.nnz == sm.nnz
        assert isinstance(back.store, DirectoryShardStore)
        assert np.array_equal(back.occupancy, sm.occupancy)
        assert np.allclose(back.to_coo().to_dense(), coo.to_dense())

    def test_open_honors_budget(self, coo, tmp_path):
        ShardedTiledMatrix.from_coo(coo, nt=16, n_shards=3,
                                    store_dir=tmp_path)
        back = ShardedTiledMatrix.open(tmp_path, budget_bytes=1)
        back.shard(0)
        back.shard(1)
        assert len(back.resident.resident_ids) == 1

    def test_metadata_charge_covers_occupancy_and_record(self, coo):
        sm = ShardedTiledMatrix.from_coo(coo, nt=16, n_shards=3)
        words = sm.occupancy.shape[1]
        assert sm.metadata_nbytes_per_shard() == words * 8 + 32

    def test_total_tile_bytes_sums_shards(self, coo):
        sm = ShardedTiledMatrix.from_coo(coo, nt=16, n_shards=3)
        per_shard = [sm.store.nbytes(s) for s in range(3)]
        assert sm.total_tile_bytes == sum(per_shard)
