"""The whole stack accepts ShardedTiledMatrix: TileSpMSpV,
BatchedSpMSpV and TileBFS dispatch to the sharded engine."""

import numpy as np
import pytest

from repro.core import BatchedSpMSpV, TileBFS, TileSpMSpV
from repro.errors import ShapeError, TileError
from repro.shards import ShardedTiledMatrix
from repro.vectors import random_sparse_vector

from ..conftest import random_coo, random_graph_coo


@pytest.fixture
def coo():
    return random_coo(70, 70, 0.08, seed=25)


@pytest.fixture
def sharded(coo):
    return ShardedTiledMatrix.from_coo(coo, nt=16, n_shards=3)


class TestTileSpMSpVDispatch:
    def test_multiply_matches_in_core(self, coo, sharded):
        x = random_sparse_vector(70, 0.2, seed=26)
        y = TileSpMSpV(sharded).multiply(x, output="dense")
        y_ref = TileSpMSpV(coo).multiply(x, output="dense")
        assert np.allclose(y, y_ref)

    def test_properties_and_repr(self, coo, sharded):
        op = TileSpMSpV(sharded)
        assert op.shape == (70, 70)
        assert op.nnz == coo.sum_duplicates().nnz
        assert "shards=3" in repr(op)

    def test_transpose_rejected(self, sharded):
        op = TileSpMSpV(sharded)
        with pytest.raises(TileError):
            op.multiply_transpose(random_sparse_vector(70, 0.2))

    def test_flops_useful(self, coo, sharded):
        x = random_sparse_vector(70, 0.2, seed=27)
        assert TileSpMSpV(sharded).flops_useful(x) == \
            TileSpMSpV(coo).flops_useful(x)


class TestBatchedDispatch:
    def test_batch_matches_in_core(self, coo, sharded):
        xs = [random_sparse_vector(70, s, seed=28 + i)
              for i, s in enumerate((0.1, 0.25))]
        ys = BatchedSpMSpV(sharded).multiply_batch(xs, output="dense")
        ys_ref = BatchedSpMSpV(coo).multiply_batch(xs, output="dense")
        assert np.allclose(ys, ys_ref)

    def test_repr(self, sharded):
        assert "shards=3" in repr(BatchedSpMSpV(sharded))


class TestTileBFSDispatch:
    def test_levels_match_in_core(self):
        g = random_graph_coo(120, avg_degree=3.0, seed=29)
        sm = ShardedTiledMatrix.from_coo(g, nt=16, n_shards=4)
        res = TileBFS(sm).run(0)
        ref = TileBFS(g).run(0)
        assert np.array_equal(res.levels, ref.levels)

    def test_multi_source(self):
        g = random_graph_coo(90, avg_degree=3.0, seed=30)
        sm = ShardedTiledMatrix.from_coo(g, nt=16, n_shards=3)
        for src in (0, 17, 55):
            assert np.array_equal(TileBFS(sm).run(src).levels,
                                  TileBFS(g).run(src).levels)

    def test_rectangular_rejected(self):
        rect = ShardedTiledMatrix.from_coo(
            random_coo(60, 40, 0.1, seed=31), nt=16, n_shards=2)
        with pytest.raises(ShapeError):
            TileBFS(rect)

    def test_format_nbytes_reports_tile_bytes(self):
        g = random_graph_coo(90, avg_degree=3.0, seed=30)
        sm = ShardedTiledMatrix.from_coo(g, nt=16, n_shards=3)
        assert TileBFS(sm).format_nbytes() == sm.total_tile_bytes
