"""Cross-module integration tests: full pipelines through the public API."""

import io

import numpy as np
import pytest

from repro import (Device, KernelSelector, RTX3060, RTX3090, SparseVector,
                   TileBFS, TileSpMSpV, random_sparse_vector, tile_bfs,
                   tile_spmspv)
from repro.baselines import (CombBLASSpMSpV, CuSparseBSRMV, EnterpriseBFS,
                             GSwitchBFS, GunrockBFS, TileSpMV)
from repro.formats import (COOMatrix, read_matrix_market,
                           write_matrix_market)
from repro.graphs import bfs_levels
from repro.matrices import fem_like, get_matrix, rmat, road_network

from .conftest import nx_levels, random_graph_coo


class TestSpMSpVChain:
    def test_bfs_via_repeated_spmspv(self):
        """Algorithm 3 of the paper: BFS as a loop of SpMSpV calls,
        cross-checked against TileBFS."""
        coo = random_graph_coo(120, 4.0, seed=1)
        n = coo.shape[0]
        op = TileSpMSpV(coo, nt=16)
        levels = np.full(n, -1, dtype=np.int64)
        levels[0] = 0
        x = SparseVector(n, np.array([0]), np.array([1.0]))
        visited = np.zeros(n, dtype=bool)
        visited[0] = True
        depth = 0
        while x.nnz:
            depth += 1
            y = op.multiply(x)
            new = y.indices[~visited[y.indices]]
            if len(new) == 0:
                break
            visited[new] = True
            levels[new] = depth
            x = SparseVector(n, new, np.ones(len(new)))
        assert np.array_equal(levels, tile_bfs(coo, 0, nt=16).levels)

    def test_chained_multiplies_tiled_output(self):
        """y = A (A x) with tiled intermediate — A^2 x oracle."""
        d = (np.random.default_rng(2).random((32, 32)) < 0.1) * 1.0
        op = TileSpMSpV(d, nt=8)
        x = random_sparse_vector(32, 0.2, seed=3)
        y1 = op.multiply(x, output="tiled")
        y2 = op.multiply(y1)
        ref = d @ (d @ x.to_dense())
        assert np.allclose(y2.to_dense(), ref)

    def test_matrix_market_to_bfs_pipeline(self):
        """Load a matrix from MM text, run every BFS, all agree."""
        coo = random_graph_coo(80, 4.0, seed=4)
        buf = io.StringIO()
        write_matrix_market(coo, buf)
        buf.seek(0)
        loaded = read_matrix_market(buf)
        ref = nx_levels(coo, 0)
        for make in (lambda: TileBFS(loaded, nt=16),
                     lambda: GunrockBFS(loaded),
                     lambda: GSwitchBFS(loaded),
                     lambda: EnterpriseBFS(loaded)):
            assert np.array_equal(make().run(0).levels, ref)


class TestAllAlgorithmsOneMatrix:
    @pytest.fixture(scope="class")
    def matrix(self):
        return get_matrix("cavity23")

    def test_spmspv_stack_agrees(self, matrix):
        from repro.formats import to_csc, to_csr
        from repro.baselines import spmspv_colwise, spmspv_rowwise

        x = random_sparse_vector(matrix.shape[1], 0.01)
        ref = tile_spmspv(matrix, x, nt=16).to_dense()
        assert np.allclose(
            TileSpMV(matrix, nt=16).multiply(x).to_dense(), ref)
        assert np.allclose(
            CuSparseBSRMV(matrix, 16).multiply(x).to_dense(), ref)
        assert np.allclose(
            CombBLASSpMSpV(matrix).multiply(x).to_dense(), ref)
        assert np.allclose(
            spmspv_rowwise(to_csr(matrix), x).to_dense(), ref)
        assert np.allclose(
            spmspv_colwise(to_csc(matrix), x).to_dense(), ref)

    def test_bfs_stack_agrees(self, matrix):
        ref = bfs_levels(matrix, 0)
        for make in (lambda: TileBFS(matrix),
                     lambda: GunrockBFS(matrix),
                     lambda: GSwitchBFS(matrix),
                     lambda: EnterpriseBFS(matrix)):
            assert np.array_equal(make().run(0).levels, ref)


class TestDeviceSharedAcrossAlgorithms:
    def test_one_device_many_ops(self):
        dev = Device(RTX3090)
        coo = fem_like(1024, nnz_per_row=20, seed=5)
        op = TileSpMSpV(coo, nt=16, device=dev)
        bfs = TileBFS(coo, nt=32, device=dev)
        op.multiply(random_sparse_vector(1024, 0.05))
        bfs.run(0)
        names = {r.name for r in dev.timeline}
        assert any(n.startswith("tile_spmspv") for n in names)
        assert any(n.startswith("tilebfs") for n in names)

    def test_spec_scaling_consistent(self):
        """Across specs, algorithm rankings stay stable on a dense-tile
        FEM matrix (paper runs both GPUs and reports the same story)."""
        coo = fem_like(8192, nnz_per_row=40, block=16, spread=0.004,
                       seed=6)
        ranks = {}
        for spec in (RTX3060, RTX3090):
            times = {}
            for name, make in (
                    ("tile", lambda d: TileBFS(coo, device=d)),
                    ("gunrock", lambda d: GunrockBFS(coo, device=d))):
                dev = Device(spec)
                times[name] = make(dev).run(0).simulated_ms
            ranks[spec.name] = times["tile"] < times["gunrock"]
        assert ranks["RTX 3060"] == ranks["RTX 3090"]


class TestBitmaskSemiring:
    def test_or_and_spmspv_equals_bfs_step(self):
        """One OR-AND SpMSpV over the pattern == one BFS expansion."""
        coo = random_graph_coo(60, 4.0, seed=7)
        d = (coo.to_dense() != 0)
        frontier = np.zeros(60, dtype=bool)
        frontier[0] = True
        expected = d[:, frontier].any(axis=1)

        # boolean SpMSpV via plus_times on 0/1 values, then threshold
        ones = COOMatrix(coo.shape, coo.row, coo.col,
                         np.ones(coo.nnz))
        y = tile_spmspv(ones, SparseVector(60, np.array([0]),
                                           np.array([1.0])), nt=4)
        got = np.zeros(60, dtype=bool)
        got[y.indices] = True
        assert np.array_equal(got, expected)


class TestSelectorsEndToEnd:
    @pytest.mark.parametrize("gen,args,seed", [
        (rmat, (9, 8), 8),
        (road_network, (16,), 9),
        (fem_like, (900, 30), 10),
    ], ids=["rmat", "road", "fem"])
    def test_all_selector_points_agree(self, gen, args, seed):
        coo = gen(*args, seed=seed)
        ref = None
        for sel in (KernelSelector.k1(), KernelSelector.k1_k2(),
                    KernelSelector.k1_k2_k3()):
            levels = TileBFS(coo, selector=sel).run(0).levels
            if ref is None:
                ref = levels
            else:
                assert np.array_equal(levels, ref)
