"""Tests for the report formatting utilities."""

import numpy as np
import pytest

from repro.bench import Summary, format_series, format_table, geomean


class TestGeomean:
    def test_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_ignores_nonpositive_and_nan(self):
        assert geomean([2.0, 0.0, -1.0, float("nan"), 8.0]) == \
            pytest.approx(4.0)

    def test_empty_is_nan(self):
        assert np.isnan(geomean([]))

    def test_single(self):
        assert geomean([7.0]) == pytest.approx(7.0)


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        text = format_table(["A", "B"], [["x", 1.5], ["y", 2.0]],
                            title="T")
        assert "T" in text and "A" in text and "x" in text
        assert "1.500" in text

    def test_nan_renders_dash(self):
        text = format_table(["A"], [[float("nan")]])
        assert "-" in text

    def test_large_numbers_compact(self):
        text = format_table(["A"], [[123456.789]])
        assert "1.23e+05" in text or "123457" in text or "1.23e5" in text

    def test_empty_rows(self):
        text = format_table(["A"], [])
        assert "A" in text


class TestFormatSeries:
    def test_pairs(self):
        s = format_series("m/alg", [1, 2], [0.5, 0.25])
        assert s.startswith("m/alg:")
        assert "1:0.5000" in s and "2:0.2500" in s


class TestSummary:
    def test_aggregates(self):
        s = Summary()
        s.add("gunrock", 2.0)
        s.add("gunrock", 8.0)
        s.add("gunrock", 0.5)
        assert s.geomean("gunrock") == pytest.approx(2.0)
        assert s.max("gunrock") == 8.0
        assert s.fraction_won("gunrock") == pytest.approx(2 / 3)

    def test_empty_key(self):
        s = Summary()
        assert np.isnan(s.geomean("missing"))
        assert np.isnan(s.fraction_won("missing"))

    def test_rows(self):
        s = Summary()
        s.add("a", 2.0)
        rows = s.rows()
        assert rows[0][0] == "a"
        assert rows[0][1] == pytest.approx(2.0)
