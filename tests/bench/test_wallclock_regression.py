"""The wall-clock regression guard: speedup-ratio comparison between a
fresh report and the committed baseline."""

from repro.bench.wallclock import (_speedup_entries, check_regression,
                                   known_sections)


def report(multiply_speedup=10.0, kernel_speedup=5.0, tilebfs=6.0,
           msbfs=1.0, batched=1.2, sharded=0.9):
    return {
        "multiply": [
            {"form": "csr", "density": 0.001,
             "speedup": multiply_speedup},
        ],
        "bfs_kernels": [
            {"kernel": "push_csr", "density": 0.01,
             "visited_fraction": 0.025, "speedup": kernel_speedup},
        ],
        "bfs": {"speedup": 1.1},
        "tilebfs": {"speedup": tilebfs},
        "msbfs": {"speedup": msbfs},
        "batched": [
            {"batch": 4, "density": 0.01, "speedup": batched},
        ],
        "sharded": [
            {"n_shards": 4, "density": 0.01, "speedup": sharded,
             "shards_executed": 3, "shards_skipped": 1},
        ],
    }


def test_speedup_entries_labels():
    entries = {k: v[0] for k, v in _speedup_entries(report()).items()}
    assert entries == {
        "multiply/csr@0.001": 10.0,
        "bfs_kernels/push_csr@0.01/v0.025": 5.0,
        "bfs": 1.1,
        "tilebfs": 6.0,
        "msbfs": 1.0,
        "batched/b4@0.01": 1.2,
        "sharded/s4@0.01": 0.9,
    }


def test_known_sections_derived_from_baseline():
    """Sections come from the committed report's keys (minus meta), so
    a new workload committed to the baseline is guarded without
    touching any hard-coded list."""
    committed = report()
    committed["meta"] = {"smoke": True}
    assert set(known_sections(committed)) == {
        "multiply", "bfs_kernels", "bfs", "tilebfs", "msbfs",
        "batched", "sharded"}
    committed["brand_new_workload"] = [{"speedup": 2.0}]
    current = report()
    failures = check_regression(current, committed)
    assert {"label": "section:brand_new_workload",
            "missing": True} in failures


def test_no_regression_on_identical_reports():
    assert check_regression(report(), report()) == []


def test_small_wobble_passes():
    current = report(multiply_speedup=7.0)      # 0.7x of committed 10x
    assert check_regression(current, report(), floor=0.6) == []


def test_detects_drop_below_floor():
    current = report(kernel_speedup=2.0)        # 0.4x of committed 5x
    failures = check_regression(current, report(), floor=0.6)
    assert [f["label"] for f in failures] == \
        ["bfs_kernels/push_csr@0.01/v0.025"]
    assert failures[0]["committed_speedup"] == 5.0
    assert failures[0]["current_speedup"] == 2.0


def test_labels_on_one_side_are_ignored():
    committed = report()
    current = report()
    current["bfs_kernels"] = []                  # rows removed: ignored
    current["multiply"].append(                  # new row: ignored
        {"form": "csc", "density": 0.5, "speedup": 0.1})
    assert check_regression(current, committed) == []


def test_floor_is_configurable():
    current = report(tilebfs=5.0)               # 5/6 ~ 0.83
    assert check_regression(current, report(), floor=0.9) != []
    assert check_regression(current, report(), floor=0.8) == []


def test_missing_section_fails():
    """A whole section recorded in the committed baseline but absent
    from the current report is a hard failure — the guard used to pass
    silently on reports that dropped a workload."""
    committed = report()
    current = report()
    del current["batched"]
    failures = check_regression(current, committed)
    assert failures == [{"label": "section:batched", "missing": True}]
    # both sides missing the section: nothing to compare, no failure
    committed2 = report()
    del committed2["batched"]
    assert check_regression(current, committed2) == []
    # a section only in the current report is fine (new workloads land)
    assert check_regression(report(), committed2) == []


def test_empty_section_is_not_missing():
    """An empty row list is still a present section (its labels are
    simply gone, which per-label logic ignores); only a *removed*
    section key trips the missing-section failure."""
    committed = report()
    current = report()
    current["batched"] = []
    assert check_regression(current, committed) == []


def test_noise_floor_skips_micro_rows():
    """Rows whose faster timed side is below the noise floor are timer
    noise and must not flake the guard; rows without timings (synthetic
    fixtures) are always compared."""
    committed = report()
    committed["bfs_kernels"][0].update(ref_ms=0.20, new_ms=0.04)
    current = report(kernel_speedup=0.5)        # would fail the floor
    current["bfs_kernels"][0].update(ref_ms=0.02, new_ms=0.04)
    assert check_regression(current, committed) == []
    # same drop on a well-measured row still fails
    committed["bfs_kernels"][0].update(ref_ms=25.0, new_ms=5.0)
    current["bfs_kernels"][0].update(ref_ms=5.0, new_ms=10.0)
    assert len(check_regression(current, committed)) == 1
