"""Smoke tests for the experiment runners on tiny entry sets.

The full-size runs live under ``benchmarks/``; here every runner is
exercised end to end on miniature inputs to pin its structure: headers,
row counts, and the qualitative relations the paper reports.
"""

import numpy as np

from repro.bench import (ALL_EXPERIMENTS, conversion_counters,
                         run_extraction, run_fig6, run_fig7, run_fig8,
                         run_fig9, run_fig10, run_fig11, run_fig12,
                         run_table2)
from repro.formats import COOMatrix
from repro.gpusim import RTX3090
from repro.matrices import fem_like, road_network
from repro.matrices.collection import _e


def tiny_entries():
    return [
        _e("tiny_fem", "fem", lambda: fem_like(512, nnz_per_row=24,
                                               block=8, seed=1)),
        _e("tiny_road", "road", lambda: road_network(12, seed=2)),
    ]


class TestRunners:
    def test_table2_structure(self):
        res = run_table2(tiny_entries())
        assert len(res.rows) == 2
        assert res.headers[0] == "Matrix"
        assert "#tiles (16)" in res.headers
        # tile counts decrease with tile size
        for row in res.rows:
            assert row[3] >= row[4] >= row[5] >= 1
        assert "tiny_fem" in res.text

    def test_fig6_structure(self):
        res = run_fig6(tiny_entries(), sparsities=(0.1, 0.001))
        # 2 sparsities x 3 rivals
        assert len(res.rows) == 6
        assert all(np.isfinite(r[2]) for r in res.rows)
        assert len(res.extra["detail_rows"]) == 4

    def test_fig7_structure(self):
        res = run_fig7(tiny_entries(), specs=(RTX3090,))
        assert len(res.rows) == 2   # one spec x 2 rivals
        assert res.rows[0][0] == "RTX 3090"
        assert all(np.isfinite(r[2]) for r in res.rows)

    def test_fig8_structure(self):
        res = run_fig8(tiny_entries())
        assert len(res.rows) == 2
        for row in res.rows:
            assert all(v > 0 for v in row[1:])

    def test_fig9_monotone_improvement(self):
        res = run_fig9(tiny_entries())
        for row in res.rows:
            # adding kernels never hurts badly: K1+K2 >= ~K1
            assert row[2] >= row[1] * 0.8

    def test_fig10_series(self):
        res = run_fig10(names=["cavity23"])
        assert len(res.rows) == 3   # 3 algorithms
        assert "cavity23/TileBFS" in res.text

    def test_fig11_ratios_finite(self):
        res = run_fig11(tiny_entries())
        for row in res.rows:
            assert row[3] > 0 and np.isfinite(row[3])

    def test_fig12_structure(self):
        res = run_fig12(tiny_entries())
        assert len(res.rows) == 2
        assert "geomean_speedup" in res.extra

    def test_extraction_runs(self):
        res = run_extraction()
        assert len(res.rows) == 3
        # the cryg-like dusty case must benefit from extraction
        assert res.rows[0][3] > 1.2

    def test_all_experiments_registry(self):
        assert set(ALL_EXPERIMENTS) == {
            "table2", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
            "fig12", "extraction"}


class TestConversionCounters:
    def test_scales_with_nnz(self):
        small = fem_like(256, nnz_per_row=16, seed=3)
        big = fem_like(2048, nnz_per_row=16, seed=3)
        c_small = conversion_counters(small, 16)
        c_big = conversion_counters(big, 16)
        assert c_big.coalesced_read_bytes > c_small.coalesced_read_bytes

    def test_empty_matrix(self):
        c = conversion_counters(COOMatrix.empty((64, 64)), 16)
        c.check()
