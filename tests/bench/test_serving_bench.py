"""The serving load-generator benchmark and its regression guard:
virtual-time determinism, saturation-knee shape, and the guard's
failure modes (the committed ``BENCH_serving.smoke.json`` stays
honest)."""

import json
import pathlib

import pytest

from repro.bench.serving import (check_serving_regression, known_rates,
                                 run_serving_bench)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def smoke_report():
    return run_serving_bench(rates=(0.5, 3.0), n_requests=80,
                             smoke=True)


def row(rate, goodput=100.0, p99=2.0):
    return {"rate": rate, "goodput_rps": goodput, "p99_ms": p99}


class TestBenchRun:
    def test_deterministic_across_runs(self, smoke_report):
        again = run_serving_bench(rates=(0.5, 3.0), n_requests=80,
                                  smoke=True)
        assert smoke_report == again       # bit-identical JSON payload

    def test_report_shape(self, smoke_report):
        meta = smoke_report["meta"]
        assert meta["capacity_rps"] > 0
        assert meta["mean_service_ms"] > 0
        assert meta["smoke"] is True
        assert known_rates(smoke_report) == (0.5, 3.0)
        for r in smoke_report["rates"]:
            assert r["completed"] + r["rejected"] == r["requests"]
            assert r["p99_ms"] >= r["p50_ms"] >= 0
            assert set(r["latency_by_kind"]) <= {"multiply", "bfs",
                                                 "pagerank"}

    def test_saturation_knee(self, smoke_report):
        """Past capacity the service rejects instead of diverging:
        the overloaded point has a materially higher reject rate, and
        its goodput stays near calibrated capacity instead of scaling
        with offered load."""
        below, above = smoke_report["rates"]
        assert below["rate"] < 1.0 < above["rate"]
        assert above["reject_rate"] > below["reject_rate"] + 0.2
        capacity = smoke_report["meta"]["capacity_rps"]
        assert above["goodput_rps"] < 2.0 * capacity
        assert above["goodput_rps"] < 0.7 * above["offered_rps"]

    def test_committed_baselines_reproduce(self):
        """The committed smoke baseline must be exactly what this
        commit's code produces — regenerate and compare."""
        path = REPO_ROOT / "BENCH_serving.smoke.json"
        committed = json.loads(path.read_text(encoding="utf-8"))
        fresh = run_serving_bench(smoke=True)
        assert check_serving_regression(fresh, committed) == []
        assert known_rates(fresh) == known_rates(committed)

    def test_full_baseline_covers_three_plus_rates(self):
        """The acceptance criterion: the committed full report sweeps
        at least three rates and shows the knee (a rate past capacity
        with a nonzero reject rate and plateaued goodput)."""
        path = REPO_ROOT / "BENCH_serving.json"
        committed = json.loads(path.read_text(encoding="utf-8"))
        rates = committed["rates"]
        assert len(rates) >= 3
        over = [r for r in rates if r["rate"] > 1.0]
        under = [r for r in rates if r["rate"] < 1.0]
        assert over and under
        assert all(r["reject_rate"] == 0.0 for r in under)
        assert max(r["reject_rate"] for r in over) > 0.3
        capacity = committed["meta"]["capacity_rps"]
        assert all(r["goodput_rps"] < 2.0 * capacity for r in over)


class TestRegressionGuard:
    def test_clean_pass(self):
        base = {"rates": [row(0.5), row(3.0)]}
        assert check_serving_regression(base, base) == []

    def test_goodput_floor(self):
        committed = {"rates": [row(0.5, goodput=100.0)]}
        current = {"rates": [row(0.5, goodput=80.0)]}
        failures = check_serving_regression(current, committed,
                                            floor=0.9)
        assert len(failures) == 1
        assert failures[0]["label"] == "rate:0.5/goodput_rps"
        assert failures[0]["floor"] == pytest.approx(90.0)

    def test_p99_ceiling(self):
        committed = {"rates": [row(1.0, p99=2.0)]}
        current = {"rates": [row(1.0, p99=3.0)]}
        failures = check_serving_regression(current, committed,
                                            floor=0.9)
        assert [f["label"] for f in failures] == ["rate:1/p99_ms"]
        assert failures[0]["ceiling"] == pytest.approx(2.0 / 0.9)

    def test_missing_rate_fails_hard(self):
        committed = {"rates": [row(0.5), row(3.0)]}
        current = {"rates": [row(0.5)]}
        failures = check_serving_regression(current, committed)
        assert {"label": "rate:3", "missing": True} in failures

    def test_new_rates_in_current_are_allowed(self):
        committed = {"rates": [row(0.5)]}
        current = {"rates": [row(0.5), row(8.0, goodput=1.0,
                                           p99=999.0)]}
        assert check_serving_regression(current, committed) == []
