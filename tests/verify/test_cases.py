"""Case model: lossless serialization and grid generation."""

import json

import numpy as np

from repro.formats import COOMatrix
from repro.runtime import available_operators
from repro.vectors.sparse_vector import SparseVector
from repro.verify import (Case, case_from_json, case_to_json,
                          generate_cases)


def bits(x):
    return np.asarray(x, dtype=np.float64).view(np.uint64)


class TestSerialization:
    def test_roundtrip_preserves_signed_zero_bits(self):
        case = Case("scatter-merge", "primitive",
                    data={"out": np.array([-0.0, 0.0, 1.5]),
                          "idx": np.array([0], dtype=np.int64),
                          "values": np.array([-0.0])})
        back, check = case_from_json(json.loads(json.dumps(
            case_to_json(case, check="scatter-merge"))))
        assert check == "scatter-merge"
        assert np.array_equal(bits(back.data["out"]),
                              bits(case.data["out"]))
        assert np.array_equal(bits(back.data["values"]),
                              bits(case.data["values"]))

    def test_roundtrip_uint64_and_int64_exact(self):
        big = (1 << 53) + 1
        m = COOMatrix((3, 3), np.array([0, 2]), np.array([1, 2]),
                      np.array([big, 3], dtype=np.int64))
        x = SparseVector(3, np.array([1]),
                         np.array([0xDEADBEEF], dtype=np.uint64))
        case = Case("tilespmspv", "spmspv", matrix=m, vectors=(x,),
                    semiring="or_and", nt=8)
        back, _ = case_from_json(case_to_json(case))
        assert back.matrix.val.dtype == np.int64
        assert back.matrix.val.tolist() == [big, 3]
        assert back.vectors[0].values.dtype == np.uint64
        assert back.vectors[0].values.tolist() == [0xDEADBEEF]
        assert back.semiring == "or_and" and back.nt == 8

    def test_roundtrip_sources(self):
        m = COOMatrix((4, 4), np.array([1]), np.array([0]))
        case = Case("msbfs", "msbfs", matrix=m, sources=(0, 2))
        back, _ = case_from_json(case_to_json(case))
        assert back.sources == (0, 2)


class TestGrid:
    def test_deterministic(self):
        a = generate_cases(seed=3, smoke=True)
        b = generate_cases(seed=3, smoke=True)
        assert [c.describe() for c in a] == [c.describe() for c in b]

    def test_every_operator_covered(self):
        cases = generate_cases(seed=0, smoke=True)
        covered = {c.operator for c in cases}
        for name in available_operators():
            assert name in covered

    def test_semiring_capable_operators_cover_all_semirings(self):
        cases = generate_cases(seed=0, smoke=True)
        for name in ("tilespmspv", "combblas", "tilespmv"):
            seen = {c.semiring for c in cases if c.operator == name}
            assert seen >= {"plus_times", "min_plus", "max_times",
                            "or_and"}

    def test_or_and_cases_are_uint64(self):
        for c in generate_cases(seed=0, smoke=True):
            if c.semiring == "or_and":
                assert c.matrix.val.dtype == np.uint64
                for v in c.vectors:
                    assert v.values.dtype == np.uint64

    def test_operator_filter(self):
        cases = generate_cases(seed=0, smoke=True,
                               operators=["tilebfs"])
        assert cases and all(c.operator == "tilebfs" for c in cases)
