"""Greedy shrinking: failing cases minimize to readable repros."""

import numpy as np

from repro.formats import COOMatrix
from repro.vectors.sparse_vector import SparseVector
from repro.verify import Case, shrink


def big_matrix_with_poison(n=32, nnz=64, seed=0):
    rng = np.random.default_rng(seed)
    row = rng.integers(0, n, nnz)
    col = rng.integers(0, n, nnz)
    val = rng.random(nnz)
    val[5] = 7.0  # the single entry the predicate keys on
    row[5], col[5] = 3, 2
    return COOMatrix((n, n), row, col, val)


def poisoned(case):
    if case.matrix is not None and np.any(case.matrix.val == 7.0):
        return "poison entry present"
    return None


class TestShrink:
    def test_matrix_shrinks_to_poison_entry(self):
        case = Case("tilespmspv", "spmspv",
                    matrix=big_matrix_with_poison())
        small = shrink(case, poisoned)
        assert poisoned(small) is not None
        assert small.matrix.nnz <= 2
        # shape halves until the poison entry at (3, 2) would fall off
        assert small.matrix.shape[0] <= 4

    def test_batch_members_dropped(self):
        vecs = tuple(SparseVector(16, np.array([i]), np.array([1.0]))
                     for i in range(3))

        def needs_index_one(case):
            hit = any(1 in v.indices for v in case.vectors)
            return "index 1 present" if hit else None

        case = Case("batched-spmspv", "spmspv",
                    matrix=COOMatrix.empty((16, 16)), vectors=vecs)
        small = shrink(case, needs_index_one)
        assert len(small.vectors) == 1
        assert small.vectors[0].indices.tolist() == [1]

    def test_vector_nnz_halved(self):
        v = SparseVector(64, np.arange(16), np.ones(16))

        def needs_index_nine(case):
            hit = any(9 in x.indices for x in case.vectors)
            return "index 9 present" if hit else None

        case = Case("tilespmspv", "spmspv",
                    matrix=COOMatrix.empty((64, 64)), vectors=(v,))
        small = shrink(case, needs_index_nine)
        assert len(small.vectors[0].indices) <= 2
        assert 9 in small.vectors[0].indices

    def test_primitive_payload_shrinks(self):
        data = {"out": np.zeros(8),
                "idx": np.arange(8, dtype=np.int64),
                "values": np.where(np.arange(8) == 6, -0.0, 1.0)}

        def has_negative_zero(case):
            v = case.data["values"]
            hit = np.any((v == 0.0) & np.signbit(v))
            return "-0.0 present" if hit else None

        case = Case("scatter-merge", "primitive", data=data)
        small = shrink(case, has_negative_zero)
        assert has_negative_zero(small) is not None
        assert len(small.data["values"]) == 1

    def test_eval_budget_respected(self):
        calls = []

        def always_fails(case):
            calls.append(1)
            return "always"

        case = Case("tilespmspv", "spmspv",
                    matrix=big_matrix_with_poison())
        shrink(case, always_fails, max_evals=5)
        assert len(calls) <= 5

    def test_crashing_candidates_skipped(self):
        original = Case("tilespmspv", "spmspv",
                        matrix=big_matrix_with_poison())

        def brittle(case):
            if case.matrix.nnz != original.matrix.nnz:
                raise RuntimeError("predicate cannot handle variant")
            return "fails on the original"

        small = shrink(original, brittle)
        assert small.matrix.nnz == original.matrix.nnz
