"""The committed repro corpus: each file is a shrunk case from a real
bug this PR fixed.  Fixed code passes every one; re-injecting the
pre-fix behaviour makes the same case fail again."""

import numpy as np
import pytest

from repro.runtime import create_operator
from repro.verify import REPRO_DIR, load_repro, run_check
from repro.verify.checks import check_pagerank, check_scatter_merge
from repro.verify.oracles import bfs_levels_oracle

SCATTER = REPRO_DIR / "scatter_merge_signed_zero.json"
PAGERANK = REPRO_DIR / "pagerank_weighted.json"
TILEBFS = REPRO_DIR / "tilebfs_pull_direction.json"


class TestCorpusFiles:
    def test_corpus_present(self):
        names = {p.name for p in REPRO_DIR.glob("*.json")}
        assert {SCATTER.name, PAGERANK.name, TILEBFS.name} <= names

    @pytest.mark.parametrize("path", [SCATTER, PAGERANK, TILEBFS],
                             ids=lambda p: p.stem)
    def test_fixed_code_passes(self, path):
        case, check = load_repro(path)
        assert run_check(check, case) is None


class TestPreFixBehaviourStillFails:
    def test_scatter_merge_bincount_without_signbit_guard(self):
        case, _ = load_repro(SCATTER)

        def prefix_merge(out, idx, values):
            # pre-fix: take the bincount fast path whenever the bases
            # compare equal to zero — loses the sign of -0.0
            if not out[idx].any():
                out[:] = out + np.bincount(idx, weights=values,
                                           minlength=len(out))
                return out
            np.add.at(out, idx, values)
            return out

        assert check_scatter_merge(case, merge=prefix_merge) \
            is not None

    def test_pagerank_degree_count_normalization(self):
        case, _ = load_repro(PAGERANK)

        def prefix_pagerank(matrix, tol=1e-14, damping=0.85):
            coo = matrix.to_coo().canonicalize()
            n = coo.shape[0]
            # pre-fix: divide by out-degree count, not weight sum
            deg = np.bincount(coo.col, minlength=n).astype(float)
            P = np.zeros((n, n))
            np.add.at(P, (coo.row, coo.col), coo.val)
            has_out = deg > 0
            P[:, has_out] /= deg[has_out]
            r = np.full(n, 1.0 / n)
            for it in range(1, 501):
                r_new = damping * (P @ r + r[~has_out].sum() / n) \
                    + (1 - damping) / n
                delta = np.abs(r_new - r).sum()
                r = r_new
                if delta < tol:
                    break
            return r / r.sum(), it

        assert check_pagerank(case, impl=prefix_pagerank) is not None

    def test_tilebfs_pull_on_directed_pattern(self):
        case, _ = load_repro(TILEBFS)
        op = create_operator("tilebfs", case.matrix, nt=case.nt)
        # the fixed plan records the pattern as asymmetric, which is
        # what gates the Pull-CSC kernel off for this graph
        assert op.symmetric is False

        source = int(case.sources[0])
        want = bfs_levels_oracle(case.matrix, source)
        assert np.array_equal(op.run(source).levels, want)

        # pre-fix behaviour: claim symmetry so the selector may pick
        # Pull-CSC, which walks this directed graph's edges backwards
        op_prefix = create_operator("tilebfs", case.matrix,
                                    nt=case.nt)
        op_prefix.symmetric = True
        got = op_prefix.run(source).levels
        assert not np.array_equal(got, want), \
            "expected the pre-fix pull path to mis-traverse this graph"
