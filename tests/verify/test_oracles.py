"""The oracles must agree with known references (they arbitrate every
operator, so they get their own cross-checks)."""

import numpy as np
import pytest

from repro.graphs import bfs_levels
from repro.semiring import MIN_PLUS, OR_AND, PLUS_TIMES
from repro.verify.oracles import (bfs_levels_oracle,
                                  dense_semiring_multiply,
                                  dijkstra_oracle, pagerank_oracle,
                                  scipy_matvec)

from ..conftest import random_coo, random_graph_coo


class TestMultiplyOracles:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_dense_oracle_matches_scipy_plus_times(self, seed):
        coo = random_coo(30, 40, 0.1, seed=seed)
        x = np.random.default_rng(seed).random(40)
        got = dense_semiring_multiply(coo, x, PLUS_TIMES)
        assert np.allclose(got, scipy_matvec(coo, x))

    def test_min_plus_identity_slots_skipped(self):
        coo = random_coo(10, 10, 0.3, seed=2)
        x = np.full(10, np.inf)
        x[3] = 1.0
        got = dense_semiring_multiply(coo, x, MIN_PLUS)
        # only column 3 contributes; everything else stays inf
        rows3 = set(coo.row[coo.col == 3].tolist())
        assert set(np.flatnonzero(np.isfinite(got)).tolist()) == rows3

    def test_or_and_bitmask(self):
        from repro.formats import COOMatrix
        m = COOMatrix((2, 2), np.array([0, 1]), np.array([1, 1]),
                      np.array([0b1100, 0b1010], dtype=np.uint64))
        x = np.zeros(2, dtype=np.uint64)
        x[1] = np.uint64(0b0110)
        got = dense_semiring_multiply(m, x, OR_AND)
        assert got.tolist() == [0b0100, 0b0010]


class TestGraphOracles:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_bfs_oracle_matches_reference(self, seed):
        coo = random_graph_coo(60, 3.0, seed=seed)
        assert np.array_equal(bfs_levels_oracle(coo, 0),
                              bfs_levels(coo, 0))

    def test_dijkstra_oracle_simple_path(self):
        from repro.formats import COOMatrix
        # 0 -> 1 (2.0) -> 2 (3.0), edge convention A[i, j] = j -> i
        coo = COOMatrix((3, 3), np.array([1, 2]), np.array([0, 1]),
                        np.array([2.0, 3.0]))
        assert dijkstra_oracle(coo, 0).tolist() == [0.0, 2.0, 5.0]

    def test_pagerank_oracle_ring_uniform(self):
        from repro.formats import COOMatrix
        n = 8
        coo = COOMatrix((n, n), np.arange(n),
                        np.roll(np.arange(n), 1))
        assert np.allclose(pagerank_oracle(coo), 1.0 / n)

    def test_pagerank_oracle_matches_networkx_weighted(self):
        import networkx as nx

        from repro.formats import COOMatrix
        coo = COOMatrix((4, 4), np.array([1, 2, 3, 3]),
                        np.array([0, 0, 1, 2]),
                        np.array([3.0, 1.0, 2.0, 1.0]))
        G = nx.DiGraph()
        G.add_nodes_from(range(4))
        for i, j, w in zip(coo.row, coo.col, coo.val):
            G.add_edge(int(j), int(i), weight=float(w))
        ref = nx.pagerank(G, alpha=0.85, tol=1e-12, max_iter=500)
        refv = np.array([ref[i] for i in range(4)])
        assert np.allclose(pagerank_oracle(coo), refv, atol=1e-8)
