"""End-to-end harness: clean sweeps pass, injected bugs produce
shrunk, replayable JSON repros."""

import json

import pytest

from repro.runtime import register_operator
from repro.runtime.registry import _ALIASES, _REGISTRY
from repro.verify import (load_repro, replay_repro, run_verification)
from repro.verify.harness import Failure, VerifyReport


@pytest.fixture
def broken_operator():
    """Temporarily register an spmspv operator whose results are
    scaled by 1 + 1e-3 — wrong against every oracle and sibling."""
    name = "broken-scaled-spmspv"

    @register_operator(name, kind="spmspv",
                       summary="deliberately wrong (tests only)",
                       capabilities=("nt",))
    def _make_broken(matrix, device=None, **kwargs):
        from repro.core.spmspv import TileSpMSpV
        from repro.vectors.sparse_vector import SparseVector

        class Broken:
            def __init__(self):
                self._op = TileSpMSpV(matrix, device=device, **kwargs)

            def multiply(self, x):
                y = self._op.multiply(x)
                return SparseVector(y.n, y.indices,
                                    y.values * (1.0 + 1e-3))

        return Broken()

    try:
        yield name
    finally:
        del _REGISTRY[name]
        for alias in [a for a, c in _ALIASES.items() if c == name]:
            del _ALIASES[alias]


class TestReport:
    def test_summary_counts_and_failures(self):
        rep = VerifyReport(cases_run=3, checks_run=9, replayed=2)
        assert rep.ok
        assert "3 cases" in rep.summary()
        rep.failures.append(Failure("op", "oracle", "boom", None))
        assert not rep.ok


class TestRunVerification:
    def test_clean_subset_passes(self, tmp_path):
        report = run_verification(seed=0, smoke=True,
                                  operators=["tilespmspv"],
                                  out_dir=tmp_path)
        assert report.ok, report.summary()
        assert report.cases_run > 0
        assert report.checks_run > report.cases_run
        # operator filters skip the committed corpus replay
        assert report.replayed == 0
        assert not list(tmp_path.iterdir())

    def test_broken_operator_yields_shrunk_replayable_repro(
            self, tmp_path, broken_operator):
        report = run_verification(seed=0, smoke=True,
                                  operators=[broken_operator],
                                  out_dir=tmp_path)
        assert not report.ok
        fail = report.failures[0]
        assert fail.operator == broken_operator
        assert fail.repro_path is not None \
            and fail.repro_path.is_file()

        # the shrunk case must still be a genuine failure on replay
        case, check, message = replay_repro(fail.repro_path)
        assert case.operator == broken_operator
        assert message is not None

        # shrinking happened: the repro is no larger than the grid's
        # smallest generated matrix and carries exactly one vector
        assert case.matrix.nnz <= 8
        assert len(case.vectors) == 1
        assert len(case.vectors[0].indices) <= 2

        # the on-disk artifact is valid JSON with the failure note
        payload = json.loads(fail.repro_path.read_text())
        assert payload["check"] == check
        assert payload["note"]

    def test_no_shrink_flag_keeps_original_case(self, tmp_path,
                                                broken_operator):
        report = run_verification(seed=0, smoke=True,
                                  operators=[broken_operator],
                                  out_dir=tmp_path,
                                  shrink_failures=False)
        assert not report.ok
        case, _ = load_repro(report.failures[0].repro_path)
        # un-shrunk grid cases are full-sized
        assert case.matrix.nnz > 8


class TestBuiltinCorpus:
    def test_committed_repros_replay_clean(self):
        from repro.verify import builtin_repro_paths
        paths = builtin_repro_paths()
        assert len(paths) >= 3
        for path in paths:
            case, check, failure = replay_repro(path)
            assert failure is None, \
                f"{path.name}: {case.describe()}: {failure}"
