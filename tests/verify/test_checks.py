"""The differential checks: green on correct code, red on (injected)
buggy implementations — including the actual pre-fix bugs this PR
fixed."""

import numpy as np
import pytest

from repro.formats import COOMatrix
from repro.vectors import random_sparse_vector
from repro.verify import Case, checks_for, run_check
from repro.verify.checks import (check_pagerank, check_scatter_merge,
                                 check_sssp)

from ..conftest import random_graph_coo


def multiply_case(operator="tilespmspv", semiring="plus_times",
                  nt=8, seed=0):
    coo = random_graph_coo(40, 4.0, seed=seed)
    x = random_sparse_vector(40, 0.2, seed=seed + 1)
    return Case(operator, "spmspv", matrix=coo, vectors=(x,),
                semiring=semiring, nt=nt)


class TestMultiplyChecks:
    def test_all_checks_pass_on_correct_operator(self):
        case = multiply_case()
        for name, fn in checks_for(case):
            assert fn(case) is None, f"{name} failed unexpectedly"

    def test_checks_cover_three_layers(self):
        names = {n for n, _ in checks_for(multiply_case())}
        assert {"oracle", "siblings", "counters"} <= names
        assert {"permute-rows", "scale-linearity"} <= names
        assert {"plan-cache-replay", "active-set-payload"} <= names

    def test_batched_gets_batch_checks(self):
        coo = random_graph_coo(40, 4.0, seed=3)
        xs = tuple(random_sparse_vector(40, 0.2, seed=s)
                   for s in (1, 2))
        case = Case("batched-spmspv", "spmspv", matrix=coo,
                    vectors=xs, nt=8)
        names = {n for n, _ in checks_for(case)}
        assert {"batch-of-one", "batched-union-bytes"} <= names
        for name, fn in checks_for(case):
            assert fn(case) is None, f"{name} failed unexpectedly"

    def test_bfs_checks_pass(self):
        coo = random_graph_coo(50, 3.0, seed=5)
        case = Case("tilebfs", "bfs", matrix=coo, sources=(0,), nt=8)
        for name, fn in checks_for(case):
            assert fn(case) is None, f"{name} failed unexpectedly"

    def test_msbfs_checks_pass(self):
        coo = random_graph_coo(50, 3.0, seed=6)
        case = Case("msbfs", "msbfs", matrix=coo, sources=(0, 7),
                    nt=8)
        for name, fn in checks_for(case):
            assert fn(case) is None, f"{name} failed unexpectedly"


class TestPrimitiveChecksCatchPreFixBugs:
    SIGNED_ZERO = {"out": np.array([-0.0]),
                   "idx": np.array([0], dtype=np.int64),
                   "values": np.array([-0.0])}

    def test_scatter_merge_check_passes_fixed_impl(self):
        case = Case("scatter-merge", "primitive",
                    data=dict(self.SIGNED_ZERO))
        assert check_scatter_merge(case) is None

    def test_scatter_merge_check_fails_prefix_fast_path(self):
        # the pre-fix fast path: bincount whenever the touched bases
        # read as zero, with no signbit guard — bincount accumulates
        # from +0.0, so a -0.0 base merged with -0.0 flips to +0.0
        def buggy_merge(out, idx, values):
            if not out[idx].any():
                out[:] += np.bincount(idx, weights=values,
                                      minlength=len(out))
                return out
            np.add.at(out, idx, values)
            return out

        case = Case("scatter-merge", "primitive",
                    data=dict(self.SIGNED_ZERO))
        msg = check_scatter_merge(case, merge=buggy_merge)
        assert msg is not None and "bit-identical" in msg

    WEIGHTED4 = COOMatrix((4, 4), np.array([1, 2, 3, 3]),
                          np.array([0, 0, 1, 2]),
                          np.array([3.0, 1.0, 2.0, 1.0]))

    def test_pagerank_check_passes_fixed_impl(self):
        case = Case("pagerank", "primitive", matrix=self.WEIGHTED4)
        assert check_pagerank(case) is None

    def test_pagerank_check_fails_prefix_degree_counting(self):
        # the pre-fix normalization divided by out-degree *count*,
        # ignoring edge weights, so the transition matrix is not
        # column-stochastic on weighted graphs
        def buggy_pagerank(matrix, tol=1e-14, damping=0.85):
            coo = matrix.to_coo().canonicalize()
            n = coo.shape[0]
            deg = np.bincount(coo.col, minlength=n).astype(float)
            P = np.zeros((n, n))
            np.add.at(P, (coo.row, coo.col), coo.val)
            has_out = deg > 0
            P[:, has_out] /= deg[has_out]
            r = np.full(n, 1.0 / n)
            for it in range(1, 501):
                r_new = damping * (P @ r + r[~has_out].sum() / n) \
                    + (1 - damping) / n
                delta = np.abs(r_new - r).sum()
                r = r_new
                if delta < tol:
                    break
            return r / r.sum(), it

        case = Case("pagerank", "primitive", matrix=self.WEIGHTED4)
        msg = check_pagerank(case, impl=buggy_pagerank)
        assert msg is not None and "oracle" in msg

    def test_sssp_check_passes_fixed_impl(self):
        coo = random_graph_coo(40, 4.0, seed=7)
        coo = COOMatrix(coo.shape, coo.row, coo.col,
                        np.abs(coo.val) + 0.05)
        case = Case("sssp", "primitive", matrix=coo, sources=(0,))
        assert check_sssp(case) is None

    # A two-hop path 0 -> 1 -> 2 that beats the direct edge 0 -> 2 by
    # exactly 2^-41 (~4.5e-13): below the old absolute relaxation
    # slack of 1e-12 but a relative error above the check's 1e-12
    # rtol at distance 0.25.  All sums are exact in float64.
    ULP_GRAPH = COOMatrix(
        (3, 3), np.array([2, 1, 2]), np.array([0, 0, 1]),
        np.array([0.25, 0.125, 0.125 - 2.0 ** -41]))

    def test_sssp_check_passes_sub_slack_improvement(self):
        # the fixed exact-strict relaxation takes the one-ulp-scale
        # improvement the old slack would have dropped
        case = Case("sssp", "primitive", matrix=self.ULP_GRAPH,
                    sources=(0,))
        assert check_sssp(case) is None

    def test_sssp_check_fails_prefix_slack(self):
        def slack_sssp(matrix, source, nt=16):
            coo = matrix.to_coo()
            n = coo.shape[0]
            d = np.full(n, np.inf)
            d[source] = 0.0
            for _ in range(n):
                for i, j, w in zip(coo.row, coo.col, coo.val):
                    # pre-fix relaxation: absolute 1e-12 slack
                    if d[j] + w < d[i] - 1e-12:
                        d[i] = d[j] + w
            return d

        case = Case("sssp", "primitive", matrix=self.ULP_GRAPH,
                    sources=(0,))
        msg = check_sssp(case, impl=slack_sssp)
        assert msg is not None

    def test_mm_roundtrip_check(self):
        big = (1 << 53) + 1
        m = COOMatrix((3, 3), np.array([0, 2]), np.array([1, 2]),
                      np.array([big, -big], dtype=np.int64))
        case = Case("mm-roundtrip", "primitive", matrix=m)
        assert run_check("mm-roundtrip", case) is None


class TestDispatch:
    def test_unknown_check_rejected(self):
        with pytest.raises(ValueError, match="not applicable"):
            run_check("nonsense", multiply_case())

    def test_run_check_converts_crashes_to_messages(self):
        # pagerank raises ShapeError on a rectangular matrix; run_check
        # must hand the shrinker a failure message, not propagate
        rect = COOMatrix((2, 3), np.array([0]), np.array([2]),
                         np.array([1.0]))
        bad = Case("pagerank", "primitive", matrix=rect)
        msg = run_check("pagerank", bad)
        assert msg is not None and "ShapeError" in msg
