"""Unit tests for the two numeric SpMSpV kernels (Alg. 4 + COO side)."""

import numpy as np
import pytest

from repro.core import coo_side_kernel, tiled_kernel
from repro.errors import ShapeError
from repro.formats import COOMatrix
from repro.semiring import MIN_PLUS
from repro.tiles import TiledMatrix, TiledVector
from repro.tiles.extraction import IndexedSideMatrix

from ..conftest import random_dense


class TestTiledKernel:
    def test_matches_dense(self):
        d = random_dense(40, 30, 0.2, seed=1)
        x = random_dense(30, 2, 0.4, seed=2)[:, 0]
        y, c = tiled_kernel(TiledMatrix.from_dense(d, 4),
                            TiledVector.from_dense(x, 4))
        assert np.allclose(y, d @ x)
        c.check()

    def test_shape_mismatch(self):
        tm = TiledMatrix.from_dense(np.eye(8), 4)
        with pytest.raises(ShapeError):
            tiled_kernel(tm, TiledVector.empty(9, 4))

    def test_tile_size_mismatch(self):
        tm = TiledMatrix.from_dense(np.eye(8), 4)
        with pytest.raises(ShapeError):
            tiled_kernel(tm, TiledVector.empty(8, 2))

    def test_empty_vector_skips_everything(self):
        d = random_dense(16, 16, 0.3, seed=3)
        tm = TiledMatrix.from_dense(d, 4)
        y, c = tiled_kernel(tm, TiledVector.empty(16, 4))
        assert np.allclose(y, 0.0)
        assert c.flops == 0

    def test_skipped_tiles_not_charged(self):
        """Tiles whose x tile is empty contribute no flops/payload."""
        d = np.zeros((8, 8))
        d[0, 0] = 1.0   # tile (0, 0)
        d[0, 5] = 1.0   # tile (0, 1)
        tm = TiledMatrix.from_dense(d, 4)
        x = np.zeros(8)
        x[0] = 1.0      # only tile 0 active
        _, c = tiled_kernel(tm, TiledVector.from_dense(x, 4))
        assert c.flops == 2.0   # one active entry

    def test_accumulates_into_existing_y(self):
        d = random_dense(8, 8, 0.4, seed=4)
        tm = TiledMatrix.from_dense(d, 4)
        x = TiledVector.from_dense(np.ones(8), 4)
        y0 = np.full(8, 0.0)
        y0[0] = 100.0
        y, _ = tiled_kernel(tm, x, y_dense=y0)
        assert y[0] == pytest.approx(100.0 + d[0].sum())

    def test_min_plus_with_sentinel_fill(self):
        d = np.zeros((4, 4))
        d[1, 0] = 3.0
        tm = TiledMatrix.from_dense(d, 4)
        x = TiledVector.from_sparse(np.array([0]), np.array([2.0]), 4, 4,
                                    fill=np.inf)
        y, _ = tiled_kernel(tm, x, semiring=MIN_PLUS)
        assert y[1] == 5.0
        assert np.isinf(y[0])


class TestCooSideKernel:
    def make_side(self, d, nt=4):
        coo = COOMatrix.from_dense(d)
        return IndexedSideMatrix.from_coo(coo, nt), coo

    def test_matches_dense_indexed(self):
        d = random_dense(20, 24, 0.1, seed=5)
        side, _ = self.make_side(d)
        x = random_dense(24, 2, 0.5, seed=6)[:, 0]
        y, c = coo_side_kernel(side, TiledVector.from_dense(x, 4))
        assert np.allclose(y, d @ x)
        c.check()

    def test_matches_dense_plain_coo(self):
        d = random_dense(20, 24, 0.1, seed=7)
        coo = COOMatrix.from_dense(d)
        x = random_dense(24, 2, 0.5, seed=8)[:, 0]
        y, _ = coo_side_kernel(coo, TiledVector.from_dense(x, 4))
        assert np.allclose(y, d @ x)

    def test_indexed_skips_inactive_column_tiles(self):
        d = np.zeros((8, 8))
        d[0, 0] = 1.0
        d[0, 7] = 1.0
        side, _ = self.make_side(d, nt=4)
        x = np.zeros(8)
        x[0] = 1.0
        _, c_idx = coo_side_kernel(side, TiledVector.from_dense(x, 4))
        coo = COOMatrix.from_dense(d)
        _, c_coo = coo_side_kernel(coo, TiledVector.from_dense(x, 4))
        # the indexed kernel scans only the active tile's entry
        assert c_idx.random_read_count < c_coo.random_read_count

    def test_empty_side(self):
        side = IndexedSideMatrix.from_coo(COOMatrix.empty((8, 8)), 4)
        y, c = coo_side_kernel(side, TiledVector.empty(8, 4))
        assert np.allclose(y, 0.0)
        assert c.atomic_ops == 0

    def test_shape_mismatch(self):
        side = IndexedSideMatrix.from_coo(COOMatrix.empty((8, 8)), 4)
        with pytest.raises(ShapeError):
            coo_side_kernel(side, TiledVector.empty(9, 4))

    def test_tile_size_mismatch(self):
        side = IndexedSideMatrix.from_coo(COOMatrix.empty((8, 8)), 4)
        with pytest.raises(ShapeError):
            coo_side_kernel(side, TiledVector.empty(8, 2))
