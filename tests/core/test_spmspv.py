"""Correctness tests for TileSpMSpV against independent oracles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TileSpMSpV, tile_spmspv
from repro.errors import ShapeError, TileError
from repro.formats import COOMatrix, to_csr
from repro.gpusim import Device, RTX3090
from repro.semiring import MAX_TIMES, MIN_PLUS, PLUS_TIMES
from repro.tiles import TiledMatrix, TiledVector, split_very_sparse_tiles
from repro.vectors import SparseVector, random_sparse_vector

from ..conftest import random_dense


def spmspv_cases():
    return st.tuples(st.integers(1, 80), st.integers(1, 80),
                     st.sampled_from([2, 4, 16, 32]),
                     st.integers(0, 10**6), st.floats(0.0, 0.5))


class TestAgainstDenseOracle:
    @given(spmspv_cases())
    @settings(max_examples=60, deadline=None)
    def test_matches_dense_product(self, params):
        m, n, nt, seed, xdens = params
        d = random_dense(m, n, 0.15, seed=seed)
        x = random_sparse_vector(n, xdens, seed=seed + 1)
        y = tile_spmspv(COOMatrix.from_dense(d), x, nt=nt)
        assert np.allclose(y.to_dense(), d @ x.to_dense())

    @given(spmspv_cases())
    @settings(max_examples=30, deadline=None)
    def test_matches_scipy(self, params):
        import scipy.sparse as sp

        m, n, nt, seed, xdens = params
        d = random_dense(m, n, 0.15, seed=seed)
        x = random_sparse_vector(n, xdens, seed=seed + 2)
        y = tile_spmspv(COOMatrix.from_dense(d), x, nt=nt)
        ref = sp.csr_matrix(d) @ x.to_dense()
        assert np.allclose(y.to_dense(), ref)

    @pytest.mark.parametrize("threshold", [0, 1, 2, 8, 10_000])
    def test_extraction_threshold_invariant(self, threshold):
        """Result is independent of how tiles are split."""
        d = random_dense(60, 60, 0.08, seed=5)
        x = random_sparse_vector(60, 0.2, seed=6)
        y = tile_spmspv(COOMatrix.from_dense(d), x, nt=16,
                        extract_threshold=threshold)
        assert np.allclose(y.to_dense(), d @ x.to_dense())


class TestInputForms:
    def test_accepts_dense_matrix(self):
        d = random_dense(10, 10, 0.4, seed=1)
        x = random_sparse_vector(10, 0.5, seed=2)
        assert np.allclose(tile_spmspv(d, x, nt=4).to_dense(),
                           d @ x.to_dense())

    def test_accepts_tiled_matrix(self):
        d = random_dense(12, 12, 0.3, seed=3)
        tm = TiledMatrix.from_dense(d, 4)
        x = random_sparse_vector(12, 0.4, seed=4)
        assert np.allclose(tile_spmspv(tm, x, nt=4).to_dense(),
                           d @ x.to_dense())

    def test_accepts_hybrid_matrix(self):
        d = random_dense(12, 12, 0.3, seed=5)
        hy = split_very_sparse_tiles(COOMatrix.from_dense(d), 4, 1)
        x = random_sparse_vector(12, 0.4, seed=6)
        assert np.allclose(tile_spmspv(hy, x, nt=4).to_dense(),
                           d @ x.to_dense())

    def test_accepts_csr_matrix(self):
        d = random_dense(12, 9, 0.3, seed=7)
        x = random_sparse_vector(9, 0.5, seed=8)
        assert np.allclose(
            tile_spmspv(to_csr(COOMatrix.from_dense(d)), x, nt=4).to_dense(),
            d @ x.to_dense())

    def test_accepts_dense_vector(self):
        d = random_dense(8, 8, 0.4, seed=9)
        xv = np.zeros(8)
        xv[[1, 5]] = [2.0, 3.0]
        op = TileSpMSpV(d, nt=4)
        assert np.allclose(op.multiply(xv).to_dense(), d @ xv)

    def test_accepts_tiled_vector(self):
        d = random_dense(8, 8, 0.4, seed=10)
        xv = np.zeros(8)
        xv[2] = 4.0
        tv = TiledVector.from_dense(xv, 4)
        op = TileSpMSpV(d, nt=4)
        assert np.allclose(op.multiply(tv).to_dense(), d @ xv)

    def test_tiled_vector_nt_mismatch(self):
        op = TileSpMSpV(np.eye(8), nt=4)
        with pytest.raises(ShapeError):
            op.multiply(TiledVector.from_dense(np.ones(8), 2))


class TestOutputs:
    def test_sparse_output_has_no_explicit_zeros(self):
        d = np.array([[1.0, -1.0], [0.0, 0.0]])
        x = SparseVector(2, np.array([0, 1]), np.array([1.0, 1.0]))
        y = TileSpMSpV(d, nt=2).multiply(x)
        # row 0 sums to exactly zero -> dropped from the sparse result
        assert 0 not in y.indices

    def test_dense_output(self):
        d = random_dense(8, 8, 0.4, seed=11)
        x = random_sparse_vector(8, 0.5, seed=12)
        y = TileSpMSpV(d, nt=4).multiply(x, output="dense")
        assert isinstance(y, np.ndarray)
        assert np.allclose(y, d @ x.to_dense())

    def test_tiled_output(self):
        d = random_dense(8, 8, 0.4, seed=13)
        x = random_sparse_vector(8, 0.5, seed=14)
        y = TileSpMSpV(d, nt=4).multiply(x, output="tiled")
        assert isinstance(y, TiledVector)
        assert np.allclose(y.to_dense(), d @ x.to_dense())

    def test_unknown_output_mode(self):
        op = TileSpMSpV(np.eye(4), nt=4)
        with pytest.raises(ShapeError):
            op.multiply(random_sparse_vector(4, 0.5), output="csv")


class TestSemirings:
    def test_min_plus_shortest_relaxation(self):
        """One min-plus SpMSpV == one Bellman-Ford relaxation step."""
        inf = np.inf
        w = np.array([[inf, inf, inf],
                      [3.0, inf, inf],
                      [5.0, 1.0, inf]])
        d = np.where(np.isinf(w), 0.0, w)   # store finite weights
        coo = COOMatrix.from_dense(d)
        op = TileSpMSpV(coo, nt=2, semiring=MIN_PLUS)
        x = SparseVector(3, np.array([0]), np.array([0.0]))
        y = op.multiply(x)
        out = y.to_dense()
        # y_i = min_j (w_ij + x_j): vertex 1 at 3, vertex 2 at 5
        assert out[1] == 3.0 and out[2] == 5.0

    def test_max_times_reliability(self):
        d = np.array([[0.0, 0.0], [0.9, 0.0]])
        op = TileSpMSpV(d, nt=2, semiring=MAX_TIMES)
        x = SparseVector(2, np.array([0]), np.array([0.5]))
        y = op.multiply(x)
        assert y.to_dense()[1] == pytest.approx(0.45)

    def test_plus_times_is_default(self):
        op = TileSpMSpV(np.eye(4), nt=4)
        assert op.semiring is PLUS_TIMES

    def test_or_and_uint64_end_to_end(self):
        """Bitmask semiring through the full tiled pipeline: the input
        conversion must keep uint64 words instead of folding them
        through the float64 default (the TiledVector dtype bug)."""
        from repro.semiring import OR_AND
        rng = np.random.default_rng(4)
        n = 24
        row = rng.integers(0, n, 60)
        col = rng.integers(0, n, 60)
        val = rng.integers(1, 1 << 16, 60).astype(np.uint64)
        coo = COOMatrix((n, n), row, col, val).canonicalize()
        xi = np.sort(rng.choice(n, size=6, replace=False))
        xv = rng.integers(1, 1 << 16, 6).astype(np.uint64)
        x = SparseVector(n, xi, xv)

        y = TileSpMSpV(coo, nt=4, semiring=OR_AND).multiply(x)
        assert y.values.dtype == np.uint64

        want = np.zeros(n, dtype=np.uint64)
        xd = np.zeros(n, dtype=np.uint64)
        xd[xi] = xv
        for i, j, a in zip(coo.row, coo.col, coo.val):
            want[i] |= a & xd[j]
        assert np.array_equal(y.to_dense(), want)


class TestErrors:
    def test_shape_mismatch(self):
        op = TileSpMSpV(random_dense(5, 7, 0.5, seed=15), nt=4)
        with pytest.raises(ShapeError):
            op.multiply(random_sparse_vector(5, 0.5))

    def test_bad_tile_size(self):
        with pytest.raises(TileError):
            TileSpMSpV(np.eye(4), nt=7)


class TestDeviceAccounting:
    def test_launch_records_submitted(self):
        dev = Device(RTX3090)
        d = random_dense(40, 40, 0.1, seed=16)
        op = TileSpMSpV(d, nt=4, extract_threshold=1, device=dev)
        op.multiply(random_sparse_vector(40, 0.3, seed=17))
        names = [r.name for r in dev.timeline]
        assert "tile_spmspv_csr" in names
        if op.hybrid.side.nnz:
            assert "tile_spmspv_coo_side" in names
        assert dev.elapsed_ms > 0

    def test_sparser_vector_cheaper(self):
        """The tile-skipping claim: fewer active tiles, less time."""
        d = random_dense(400, 400, 0.05, seed=18)
        op = TileSpMSpV(d, nt=16)
        times = {}
        for s in (0.5, 0.005):
            dev = Device(RTX3090)
            op.device = dev
            op.multiply(random_sparse_vector(400, s, seed=19))
            times[s] = dev.elapsed_ms
        assert times[0.005] < times[0.5]

    def test_flops_useful(self):
        d = np.zeros((4, 4))
        d[:, 1] = 1.0    # 4 nonzeros in column 1
        op = TileSpMSpV(d, nt=4)
        x = SparseVector(4, np.array([1]), np.array([1.0]))
        assert op.flops_useful(x) == 8


class TestEdgeCases:
    def test_empty_vector(self):
        d = random_dense(10, 10, 0.3, seed=20)
        y = TileSpMSpV(d, nt=4).multiply(SparseVector.empty(10))
        assert y.nnz == 0

    def test_empty_matrix(self):
        op = TileSpMSpV(COOMatrix.empty((6, 6)), nt=2)
        y = op.multiply(random_sparse_vector(6, 0.5, seed=21))
        assert y.nnz == 0

    def test_single_entry_matrix(self):
        coo = COOMatrix((3, 3), np.array([1]), np.array([2]),
                        np.array([7.0]))
        y = TileSpMSpV(coo, nt=2).multiply(
            SparseVector(3, np.array([2]), np.array([2.0])))
        assert y.to_dense().tolist() == [0.0, 14.0, 0.0]

    def test_rectangular_tall(self):
        d = random_dense(100, 8, 0.2, seed=22)
        x = random_sparse_vector(8, 0.6, seed=23)
        assert np.allclose(tile_spmspv(d, x, nt=4).to_dense(),
                           d @ x.to_dense())

    def test_rectangular_wide(self):
        d = random_dense(8, 100, 0.2, seed=24)
        x = random_sparse_vector(100, 0.1, seed=25)
        assert np.allclose(tile_spmspv(d, x, nt=4).to_dense(),
                           d @ x.to_dense())
