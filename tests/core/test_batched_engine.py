"""The batched multi-vector engine: per-vector byte-identity with the
single-vector path, and the shared-load counter discount.

The oracle-style grid: for every (shape x density x semiring x
batch-size) combination, :func:`batched_union_kernel` must produce,
per vector, exactly the ``y`` the single-vector :func:`tiled_kernel`
produces — bit-for-bit, including NaN positions — and its counters
must equal the sum of the single-vector launches minus the documented
shared-load discount, computed here independently from the matrix
structure."""

import dataclasses

import numpy as np
import pytest

from repro.core import (BatchedSpMSpV, TileSpMSpV, batched_union_kernel,
                        tiled_kernel)
from repro.core.spmspv import as_tiled_vector
from repro.errors import ShapeError, TileError
from repro.formats import COOMatrix
from repro.gpusim import KernelCounters
from repro.runtime import PlanCache
from repro.semiring import MAX_TIMES, MIN_PLUS, PLUS_TIMES
from repro.tiles import TiledMatrix
from repro.vectors import SparseVector

from ..conftest import random_dense
from .test_kernel_equivalence import (assert_counters_identical,
                                      assert_y_identical, frontier)

SEMIRINGS = [PLUS_TIMES, MIN_PLUS, MAX_TIMES]
DENSITIES = [0.0, 0.002, 0.01, 0.1, 1.0]
SHAPES = [(64, 64, 4), (200, 120, 8), (333, 333, 16)]
BATCH_SIZES = [1, 2, 5]


def batch(n, nt, size, density, seed, fill=0.0):
    return [frontier(n, density, seed=seed + b, nt=nt, fill=fill)
            for b in range(size)]


# ----------------------------------------------------------------------
# the equivalence grid: per-vector results byte-identical to the
# single-vector kernel
# ----------------------------------------------------------------------
@pytest.mark.parametrize("m,n,nt", SHAPES)
@pytest.mark.parametrize("density", DENSITIES)
@pytest.mark.parametrize("size", BATCH_SIZES)
def test_union_kernel_matches_singles(m, n, nt, density, size):
    A = TiledMatrix.from_dense(random_dense(m, n, 0.05, seed=m + nt), nt)
    xs = batch(n, nt, size, density, seed=int(density * 1000) + n)
    Y, _ = batched_union_kernel(A, xs)
    assert Y.shape == (size, m)
    for b, x in enumerate(xs):
        y_ref, _ = tiled_kernel(A, x)
        assert_y_identical(Y[b], y_ref)


@pytest.mark.parametrize("semiring,fill", [
    (PLUS_TIMES, 0.0), (MIN_PLUS, np.inf), (MAX_TIMES, -np.inf)])
@pytest.mark.parametrize("density", [0.0, 0.05, 1.0])
def test_union_kernel_semiring_grid(semiring, fill, density):
    A = TiledMatrix.from_dense(random_dense(96, 80, 0.08, seed=31), 8)
    xs = batch(80, 8, 4, density, seed=17, fill=fill)
    Y, counters = batched_union_kernel(A, xs, semiring=semiring)
    counters.check()
    for b, x in enumerate(xs):
        y_ref, _ = tiled_kernel(A, x, semiring=semiring)
        assert_y_identical(Y[b], y_ref)


def test_union_kernel_mixed_densities():
    """Vectors of wildly different sparsity share one union launch and
    each still gets its exact single-vector result."""
    A = TiledMatrix.from_dense(random_dense(128, 144, 0.06, seed=5), 16)
    xs = [frontier(144, d, seed=b, nt=16)
          for b, d in enumerate([0.0, 0.002, 0.3, 1.0, 0.01])]
    Y, _ = batched_union_kernel(A, xs)
    for b, x in enumerate(xs):
        y_ref, _ = tiled_kernel(A, x)
        assert_y_identical(Y[b], y_ref)


# ----------------------------------------------------------------------
# the counter contract
# ----------------------------------------------------------------------
def test_batch_of_one_counters_byte_identical():
    """With B=1 every shared-load discount is vacuous: the batched
    launch must charge exactly what the single-vector kernel charges."""
    A = TiledMatrix.from_dense(random_dense(200, 120, 0.05, seed=9), 8)
    for density in DENSITIES:
        x = frontier(120, density, seed=int(density * 100) + 3, nt=8)
        Y, c_batch = batched_union_kernel(A, [x])
        y_ref, c_single = tiled_kernel(A, x)
        assert_y_identical(Y[0], y_ref)
        assert_counters_identical(c_batch, c_single)


def test_shared_load_discount_formula():
    """The batch counters equal the summed single-vector counters minus
    exactly the documented discount: (k-1) metadata scans, the payload
    bytes of the duplicated (vector, entry) pairs, (k-1) launches, and
    the extra per-vector grids (warps / divergence are per-launch)."""
    A = TiledMatrix.from_dense(random_dense(160, 160, 0.07, seed=13), 8)
    xs = batch(160, 8, 4, 0.2, seed=21)
    _, c_batch = batched_union_kernel(A, xs)
    singles = [tiled_kernel(A, x)[1] for x in xs]
    c_loop = KernelCounters.sum(singles)
    d = c_loop.delta(c_batch)
    k = len(xs)

    # metadata scan once per batch instead of once per vector
    assert d["coalesced_read_bytes"] > 0
    meta_saved = (k - 1) * A.n_nonempty_tiles * 16.0
    # payload: union entries charged once; singles charge per active
    # entry per vector
    idx_bytes = A.index_bytes_per_entry()
    union_active = np.zeros(A.n_tile_cols, dtype=bool)
    per_vec_entries = 0
    for x in xs:
        active = x.x_ptr >= 0
        union_active |= active
        per_vec_entries += int(A.tile_nnz()[active[A.tile_colidx]].sum())
    union_entries = int(A.tile_nnz()[union_active[A.tile_colidx]].sum())
    payload_saved = (per_vec_entries - union_entries) * (8.0 + idx_bytes)
    assert d["coalesced_read_bytes"] == pytest.approx(
        meta_saved + payload_saved)
    assert d["launches"] == k - 1
    # every genuinely per-vector cost is unchanged
    for f in ("l2_read_bytes", "shared_bytes", "flops", "word_ops",
              "coalesced_write_bytes", "atomic_ops",
              "random_read_count", "random_write_count"):
        assert d[f] == pytest.approx(0.0), f


@pytest.mark.parametrize("density", [0.05, 0.2, 1.0])
def test_modeled_bytes_strictly_below_looped(density):
    """The acceptance criterion: on workloads where vectors share
    tiles, the batch moves strictly fewer modeled bytes than B times
    the single-vector cost."""
    A = TiledMatrix.from_dense(random_dense(256, 256, 0.05, seed=29), 16)
    xs = batch(256, 16, 6, density, seed=41)
    _, c_batch = batched_union_kernel(A, xs)
    c_loop = KernelCounters.sum(tiled_kernel(A, x)[1] for x in xs)
    assert c_batch.global_bytes < c_loop.global_bytes


def test_empty_batch_rejected():
    A = TiledMatrix.from_dense(random_dense(32, 32, 0.1, seed=1), 4)
    with pytest.raises(ShapeError):
        batched_union_kernel(A, [])


def test_shape_and_tile_mismatch_rejected():
    A = TiledMatrix.from_dense(random_dense(32, 32, 0.1, seed=1), 4)
    good = frontier(32, 0.1, seed=2, nt=4)
    with pytest.raises(ShapeError):
        batched_union_kernel(A, [good, frontier(36, 0.1, seed=3, nt=4)])
    with pytest.raises(ShapeError):
        batched_union_kernel(A, [good, frontier(32, 0.1, seed=3, nt=8)])


def test_all_empty_batch_is_cheap():
    """A batch of empty vectors still launches one metadata-scan grid
    and nothing else."""
    A = TiledMatrix.from_dense(random_dense(64, 64, 0.1, seed=3), 8)
    xs = batch(64, 8, 3, 0.0, seed=0)
    Y, c = batched_union_kernel(A, xs)
    assert not Y.any()
    assert c.launches == 1
    assert c.flops == 0.0


# ----------------------------------------------------------------------
# the BatchedSpMSpV operator
# ----------------------------------------------------------------------
def make_coo(m, n, seed, density=0.04):
    return COOMatrix.from_dense(random_dense(m, n, density, seed=seed))


def test_operator_matches_tilespmspv_including_coo_side():
    """End to end through the hybrid plan: tiled part batched, very
    sparse extracted side applied per vector — equal to the single
    operator on every vector, sparse and dense output alike."""
    coo = make_coo(180, 140, seed=51)
    single = TileSpMSpV(coo, nt=16, extract_threshold=3)
    engine = BatchedSpMSpV(coo, nt=16, extract_threshold=3)
    assert engine.hybrid.side.nnz > 0   # the side path is exercised
    xs = [SparseVector(140, np.sort(np.random.default_rng(s).choice(
              140, 9, replace=False)),
          1.0 + np.random.default_rng(s).random(9)) for s in range(4)]
    Y = engine.multiply_batch(xs, output="dense")
    ys = engine.multiply_batch(xs, output="sparse")
    for b, x in enumerate(xs):
        y_ref = single.multiply(x, output="dense")
        assert_y_identical(Y[b], y_ref)
        assert_y_identical(ys[b].to_dense(), y_ref)


def test_operator_single_multiply_is_batch_of_one():
    coo = make_coo(100, 100, seed=57)
    engine = BatchedSpMSpV(coo, nt=8)
    single = TileSpMSpV(coo, nt=8)
    x = SparseVector(100, np.array([3, 40, 77]), np.array([1., 2., 3.]))
    assert_y_identical(engine.multiply(x, output="dense"),
                       single.multiply(x, output="dense"))


def test_operator_shares_plan_with_tilespmspv():
    """One tiling serves both operators: building the batched engine
    after TileSpMSpV over the same matrix hits the plan cache."""
    cache = PlanCache()
    coo = make_coo(120, 120, seed=61)
    single = TileSpMSpV(coo, nt=8, plan_cache=cache)
    assert cache.stats()["misses"] == 1
    engine = BatchedSpMSpV(coo, nt=8, plan_cache=cache)
    stats = cache.stats()
    assert stats["misses"] == 1 and stats["hits"] == 1
    assert engine.hybrid is single.hybrid


def test_operator_validation():
    coo = make_coo(64, 64, seed=63)
    with pytest.raises(TileError):
        BatchedSpMSpV(coo, nt=7)
    engine = BatchedSpMSpV(coo, nt=8)
    with pytest.raises(ShapeError):
        engine.multiply_batch(
            [SparseVector(32, np.array([1]), np.array([1.0]))])
    with pytest.raises(ShapeError):
        engine.multiply_batch(
            [SparseVector(64, np.array([1]), np.array([1.0]))],
            output="list")


def test_operator_accepts_prebuilt_tiled_matrix():
    d = random_dense(96, 96, 0.05, seed=67)
    A = TiledMatrix.from_dense(d, 8)
    engine = BatchedSpMSpV(A)
    x = SparseVector(96, np.array([5, 50]), np.array([2.0, 3.0]))
    y = engine.multiply(x, output="dense")
    y_ref, _ = tiled_kernel(A, as_tiled_vector(x, 8, 0.0))
    assert_y_identical(y, y_ref)


def test_dataclass_delta_roundtrip():
    """KernelCounters.delta is the field-wise difference used by the
    discount tests (and may go negative, hence a dict)."""
    a = KernelCounters(flops=10.0, launches=2)
    b = KernelCounters(flops=25.0, launches=1)
    d = a.delta(b)
    assert d["flops"] == -15.0 and d["launches"] == 1
    assert set(d) == {f.name for f in dataclasses.fields(a)}
