"""Tests for the transpose multiply and directed Brandes BC."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TileSpMSpV
from repro.errors import ShapeError
from repro.formats import COOMatrix
from repro.gpusim import Device, RTX3090
from repro.vectors import SparseVector, random_sparse_vector

from ..conftest import random_dense


class TestMultiplyTranspose:
    @given(st.integers(1, 60), st.integers(1, 60),
           st.integers(0, 10**6), st.floats(0.0, 0.5))
    @settings(max_examples=40, deadline=None)
    def test_matches_dense(self, m, n, seed, xd):
        d = random_dense(m, n, 0.2, seed=seed)
        op = TileSpMSpV(d, nt=16)
        x = random_sparse_vector(m, xd, seed=seed + 1)
        y = op.multiply_transpose(x)
        assert np.allclose(y.to_dense(), d.T @ x.to_dense())

    def test_includes_side_matrix(self):
        d = random_dense(60, 60, 0.02, seed=1)   # scattered => side nnz
        op = TileSpMSpV(d, nt=16, extract_threshold=4)
        assert op.hybrid.side.nnz > 0
        x = random_sparse_vector(60, 0.3, seed=2)
        assert np.allclose(op.multiply_transpose(x).to_dense(),
                           d.T @ x.to_dense())

    def test_shape_error(self):
        op = TileSpMSpV(random_dense(5, 7, 0.5, seed=3), nt=4)
        with pytest.raises(ShapeError):
            op.multiply_transpose(random_sparse_vector(7, 0.5))

    def test_output_modes(self):
        d = random_dense(8, 8, 0.4, seed=4)
        op = TileSpMSpV(d, nt=4)
        x = random_sparse_vector(8, 0.5, seed=5)
        dense = op.multiply_transpose(x, output="dense")
        assert isinstance(dense, np.ndarray)
        tiled = op.multiply_transpose(x, output="tiled")
        assert np.allclose(tiled.to_dense(), dense)
        with pytest.raises(ShapeError):
            op.multiply_transpose(x, output="csv")

    def test_transpose_tiling_cached(self):
        op = TileSpMSpV(np.eye(8), nt=4)
        x = SparseVector(8, np.array([0]), np.array([1.0]))
        op.multiply_transpose(x)
        first = op._transposed_full_tiled
        op.multiply_transpose(x)
        assert op._transposed_full_tiled is first

    def test_device_record(self):
        dev = Device(RTX3090)
        op = TileSpMSpV(np.eye(8), nt=4, device=dev)
        op.multiply_transpose(SparseVector(8, np.array([1]),
                                           np.array([1.0])))
        assert any(r.name == "tile_spmspv_transpose"
                   for r in dev.timeline)

    def test_symmetric_matrix_agrees_with_forward(self):
        d = random_dense(20, 20, 0.2, seed=6)
        d = d + d.T
        op = TileSpMSpV(d, nt=4)
        x = random_sparse_vector(20, 0.3, seed=7)
        a = op.multiply(x).to_dense()
        b = op.multiply_transpose(x).to_dense()
        assert np.allclose(a, b)


class TestDirectedBC:
    def _directed_coo(self, n, seed):
        import networkx as nx

        G = nx.gnp_random_graph(n, 0.12, seed=seed, directed=True)
        A = nx.to_scipy_sparse_array(G, format="coo")
        # our convention: A[i, j] = edge j -> i
        return G, COOMatrix((n, n), A.col.astype(np.int64),
                            A.row.astype(np.int64),
                            A.data.astype(float))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_networkx(self, seed):
        import networkx as nx

        from repro.graphs import betweenness_centrality

        G, coo = self._directed_coo(28, seed)
        ours = betweenness_centrality(coo, nt=4, directed=True,
                                      normalized=False)
        ref = nx.betweenness_centrality(G, normalized=False)
        refv = np.array([ref[i] for i in range(28)])
        assert np.allclose(ours, refv, atol=1e-9)

    def test_directed_batched_rejected(self):
        from repro.graphs import betweenness_centrality

        _, coo = self._directed_coo(10, 3)
        with pytest.raises(ShapeError):
            betweenness_centrality(coo, nt=2, directed=True,
                                   batch_size=4)
