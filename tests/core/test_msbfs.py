"""Tests for bit-parallel multi-source BFS."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MultiSourceBFS, TileBFS
from repro.core.msbfs import WORD_SOURCES
from repro.errors import ShapeError
from repro.formats import COOMatrix
from repro.gpusim import Device, RTX3090

from ..conftest import nx_levels, random_graph_coo


class TestCorrectness:
    def test_matches_single_source_runs(self):
        coo = random_graph_coo(200, 4.0, seed=1)
        srcs = [0, 13, 99, 199]
        res = MultiSourceBFS(coo).run(srcs)
        bfs = TileBFS(coo, nt=16)
        for s in srcs:
            assert np.array_equal(res.levels_from(s), bfs.run(s).levels)

    def test_matches_networkx(self):
        coo = random_graph_coo(120, 3.0, seed=2)
        res = MultiSourceBFS(coo).run([5, 60])
        assert np.array_equal(res.levels_from(5), nx_levels(coo, 5))
        assert np.array_equal(res.levels_from(60), nx_levels(coo, 60))

    @given(st.integers(2, 100), st.integers(0, 10**5),
           st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_property_random(self, n, seed, k):
        coo = random_graph_coo(n, 4.0, seed)
        rng = np.random.default_rng(seed)
        srcs = rng.choice(n, size=min(k, n), replace=False)
        res = MultiSourceBFS(coo).run(srcs)
        for s in srcs:
            assert np.array_equal(res.levels_from(int(s)),
                                  nx_levels(coo, int(s)))

    def test_full_word_of_sources(self):
        coo = random_graph_coo(100, 4.0, seed=3)
        srcs = list(range(WORD_SOURCES))
        res = MultiSourceBFS(coo).run(srcs)
        assert res.levels.shape == (WORD_SOURCES, 100)
        # diagonal: each source at level 0 from itself
        for b, s in enumerate(srcs):
            assert res.levels[b, s] == 0

    def test_max_depth(self):
        coo = random_graph_coo(100, 4.0, seed=4)
        res = MultiSourceBFS(coo).run([0], max_depth=2)
        assert res.levels.max() <= 2


class TestValidation:
    def test_too_many_sources(self):
        coo = random_graph_coo(200, 3.0, seed=5)
        with pytest.raises(ShapeError):
            MultiSourceBFS(coo).run(list(range(WORD_SOURCES + 1)))

    def test_duplicate_sources(self):
        coo = random_graph_coo(20, 3.0, seed=6)
        with pytest.raises(ShapeError):
            MultiSourceBFS(coo).run([1, 1])

    def test_empty_sources(self):
        coo = random_graph_coo(20, 3.0, seed=7)
        with pytest.raises(ShapeError):
            MultiSourceBFS(coo).run([])

    def test_source_out_of_range(self):
        coo = random_graph_coo(20, 3.0, seed=8)
        with pytest.raises(ShapeError):
            MultiSourceBFS(coo).run([20])

    def test_nonsquare(self):
        with pytest.raises(ShapeError):
            MultiSourceBFS(COOMatrix.empty((3, 4)))

    def test_unknown_source_lookup(self):
        coo = random_graph_coo(20, 3.0, seed=9)
        res = MultiSourceBFS(coo).run([0])
        with pytest.raises(ShapeError):
            res.levels_from(5)


class TestBatchedEngine:
    """``engine="batched"`` routes the traversal through the coalesced
    multi-vector SpMSpV engine: same levels as the word engine, no
    64-source cap."""

    def test_levels_identical_to_words_engine(self):
        coo = random_graph_coo(250, 4.0, seed=21)
        srcs = [0, 17, 120, 249]
        words = MultiSourceBFS(coo).run(srcs)
        batched = MultiSourceBFS(coo, engine="batched").run(srcs)
        assert np.array_equal(words.levels, batched.levels)
        assert batched.iterations >= words.iterations - 1

    def test_more_than_word_sources(self):
        """The word engine rejects > 64 sources; the batched engine
        takes any number and still matches per-source BFS."""
        coo = random_graph_coo(300, 4.0, seed=22)
        srcs = list(range(WORD_SOURCES + 20))
        res = MultiSourceBFS(coo, engine="batched").run(srcs)
        assert res.levels.shape == (WORD_SOURCES + 20, 300)
        for s in (0, 40, 70, WORD_SOURCES + 19):
            assert np.array_equal(res.levels_from(s),
                                  nx_levels(coo, s))

    def test_words_engine_keeps_source_cap(self):
        coo = random_graph_coo(200, 3.0, seed=23)
        with pytest.raises(ShapeError):
            MultiSourceBFS(coo, engine="words").run(
                list(range(WORD_SOURCES + 1)))

    def test_max_depth(self):
        coo = random_graph_coo(100, 4.0, seed=24)
        res = MultiSourceBFS(coo, engine="batched").run([0, 1],
                                                        max_depth=2)
        assert res.levels.max() <= 2

    def test_unknown_engine(self):
        coo = random_graph_coo(20, 3.0, seed=25)
        with pytest.raises(ShapeError):
            MultiSourceBFS(coo, engine="tiles")

    def test_device_time_accumulates(self):
        coo = random_graph_coo(400, 4.0, seed=26)
        dev = Device(RTX3090)
        res = MultiSourceBFS(coo, engine="batched", device=dev).run(
            [0, 100, 200])
        assert res.simulated_ms > 0
        assert res.simulated_ms == pytest.approx(dev.elapsed_ms)


class TestBatchingAdvantage:
    def test_one_batch_cheaper_than_k_runs(self):
        """The point of MS-BFS: 8 sources in one batch cost less
        simulated time than 8 separate traversals."""
        coo = random_graph_coo(2000, 6.0, seed=10)
        srcs = list(range(8))
        dev_b = Device(RTX3090)
        MultiSourceBFS(coo, device=dev_b).run(srcs)
        dev_s = Device(RTX3090)
        ms = MultiSourceBFS(coo, device=dev_s)
        for s in srcs:
            ms.run([s])
        assert dev_b.elapsed_ms < dev_s.elapsed_ms

    def test_iterations_bounded_by_max_eccentricity(self):
        coo = random_graph_coo(300, 5.0, seed=11)
        srcs = [0, 100, 200]
        res = MultiSourceBFS(coo).run(srcs)
        worst = max(res.levels_from(s).max() for s in srcs)
        # rounds = deepest level (+1 final probe at most)
        assert res.iterations <= worst + 1


class TestChunkedLevelRecording:
    def test_levels_invariant_to_chunk_size(self, monkeypatch):
        """The blocked level scatter (bounded bit-unpack working set)
        must be a pure memory optimisation: shrinking the chunk to a
        degenerate size changes nothing."""
        import repro.core.msbfs as msbfs_mod
        coo = random_graph_coo(300, 5.0, seed=31)
        srcs = [0, 50, 150, 299]
        want = MultiSourceBFS(coo).run(srcs).levels
        monkeypatch.setattr(msbfs_mod, "_LEVEL_CHUNK", 3)
        got = MultiSourceBFS(coo).run(srcs).levels
        assert np.array_equal(got, want)
