"""Kernel-level tests: each BFS kernel's single step must equal the
reference frontier expansion ``new = neighbours(frontier) - visited``."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import pull_csc_kernel, push_csc_kernel, push_csr_kernel
from repro.errors import ShapeError
from repro.formats import COOMatrix
from repro.tiles import BitTiledMatrix, BitVector

from ..conftest import random_graph_coo


def reference_step(coo: COOMatrix, frontier: np.ndarray,
                   visited: np.ndarray) -> np.ndarray:
    """Unvisited out-neighbours of the frontier (dense oracle)."""
    d = coo.to_dense() != 0
    reached = d[:, frontier].any(axis=1)
    return np.flatnonzero(reached & ~visited)


def setup(n=60, nt=4, seed=0, avg_degree=4.0):
    coo = random_graph_coo(n, avg_degree, seed)
    a1 = BitTiledMatrix.from_coo(coo, nt, "csc")
    a2 = BitTiledMatrix.from_coo(coo, nt, "csr")
    return coo, a1, a2


def step_case():
    return st.tuples(st.integers(4, 60), st.sampled_from([2, 4, 16, 32]),
                     st.integers(0, 10**5), st.floats(0.05, 0.6),
                     st.floats(0.0, 0.8))


class TestKernelsAgree:
    @given(step_case())
    @settings(max_examples=40, deadline=None)
    def test_all_three_match_reference(self, params):
        n, nt, seed, fdens, vdens = params
        coo = random_graph_coo(n, 4.0, seed)
        a1 = BitTiledMatrix.from_coo(coo, nt, "csc")
        a2 = BitTiledMatrix.from_coo(coo, nt, "csr")
        rng = np.random.default_rng(seed + 1)
        frontier = np.flatnonzero(rng.random(n) < fdens)
        if len(frontier) == 0:
            frontier = np.array([0])
        visited_extra = np.flatnonzero(rng.random(n) < vdens)
        visited_idx = np.union1d(frontier, visited_extra)
        x = BitVector.from_indices(frontier, n, nt)
        m = BitVector.from_indices(visited_idx, n, nt)
        visited_mask = np.zeros(n, dtype=bool)
        visited_mask[visited_idx] = True
        expected = reference_step(coo, frontier, visited_mask)

        y1, _ = push_csc_kernel(a1, x, m)
        y2, _ = push_csr_kernel(a2, x, m)
        assert np.array_equal(y1.to_indices(), expected)
        assert np.array_equal(y2.to_indices(), expected)

    @given(step_case())
    @settings(max_examples=40, deadline=None)
    def test_pull_finds_vertices_adjacent_to_visited(self, params):
        """Pull-CSC claims every unvisited vertex with a *visited*
        parent (its frontier is implicitly ~m, per Alg. 7)."""
        n, nt, seed, fdens, vdens = params
        coo = random_graph_coo(n, 4.0, seed)
        a1 = BitTiledMatrix.from_coo(coo, nt, "csc")
        rng = np.random.default_rng(seed + 2)
        visited_idx = np.flatnonzero(rng.random(n) < max(0.05, vdens))
        if len(visited_idx) == 0:
            visited_idx = np.array([0])
        m = BitVector.from_indices(visited_idx, n, nt)
        x = BitVector.from_indices(visited_idx, n, nt)  # unused by pull
        visited_mask = np.zeros(n, dtype=bool)
        visited_mask[visited_idx] = True
        expected = reference_step(coo, visited_idx, visited_mask)
        y3, _ = pull_csc_kernel(a1, x, m)
        assert np.array_equal(y3.to_indices(), expected)


class TestValidation:
    def test_push_csc_requires_csc(self):
        _, a1, a2 = setup()
        x = BitVector.zeros(60, 4)
        with pytest.raises(ShapeError):
            push_csc_kernel(a2, x, x)

    def test_push_csr_requires_csr(self):
        _, a1, _ = setup()
        x = BitVector.zeros(60, 4)
        with pytest.raises(ShapeError):
            push_csr_kernel(a1, x, x)

    def test_pull_requires_csc(self):
        _, _, a2 = setup()
        x = BitVector.zeros(60, 4)
        with pytest.raises(ShapeError):
            pull_csc_kernel(a2, x, x)

    def test_rejects_tile_size_mismatch(self):
        _, a1, _ = setup(nt=4)
        x = BitVector.zeros(60, 2)
        with pytest.raises(ShapeError):
            push_csc_kernel(a1, x, x)

    def test_rejects_length_mismatch(self):
        _, a1, _ = setup(nt=4)
        x = BitVector.zeros(32, 4)
        with pytest.raises(ShapeError):
            push_csc_kernel(a1, x, x)

    def test_rejects_nonsquare(self):
        coo = COOMatrix((4, 8), np.array([0]), np.array([5]))
        a1 = BitTiledMatrix.from_coo(coo, 4, "csc")
        x = BitVector.zeros(8, 4)
        m = BitVector.zeros(4, 4)
        with pytest.raises(ShapeError):
            push_csc_kernel(a1, x, m)


class TestCounters:
    def test_empty_frontier_is_cheap(self):
        _, a1, _ = setup()
        x = BitVector.zeros(60, 4)
        m = BitVector.zeros(60, 4)
        y, c = push_csc_kernel(a1, x, m)
        assert y.count() == 0
        assert c.atomic_ops == 0
        assert c.launches == 1

    def test_push_csr_skips_inactive_tiles(self):
        """Tiles whose frontier word is empty cost no word traffic."""
        coo, _, a2 = setup(n=64, nt=4, seed=3)
        m = BitVector.zeros(64, 4)
        tiny = BitVector.from_indices(np.array([0]), 64, 4)
        full = BitVector.from_indices(np.arange(64), 64, 4)
        _, c_tiny = push_csr_kernel(a2, tiny, m)
        _, c_full = push_csr_kernel(a2, full, m)
        assert c_tiny.coalesced_read_bytes < c_full.coalesced_read_bytes

    def test_pull_early_exit_charges_less_when_mask_dense(self):
        """With nearly everything visited, unvisited vertices hit a
        visited parent immediately — fewer tiles scanned."""
        coo = random_graph_coo(200, 8.0, seed=4)
        a1 = BitTiledMatrix.from_coo(coo, 4, "csc")
        almost_all = BitVector.from_indices(np.arange(195), 200, 4)
        few = BitVector.from_indices(np.arange(5), 200, 4)
        _, c_dense = pull_csc_kernel(a1, almost_all, almost_all)
        _, c_sparse = pull_csc_kernel(a1, few, few)
        # per-unvisited-vertex cost is lower when the mask is dense
        dense_unvisited, sparse_unvisited = 5, 195
        assert (c_dense.random_read_count / dense_unvisited
                <= c_sparse.random_read_count / sparse_unvisited + 1e-9)

    def test_counters_validate(self):
        coo, a1, a2 = setup(seed=5)
        x = BitVector.from_indices(np.array([0, 1]), 60, 4)
        m = x.copy()
        for kern, A in ((push_csc_kernel, a1), (push_csr_kernel, a2),
                        (pull_csc_kernel, a1)):
            _, c = kern(A, x, m)
            c.check()
            assert c.warps >= 1.0
