"""Tests for the CSC-form kernel, adaptive mode selection, and masked
multiply (the §3.2.3 dual-form machinery and its GraphBLAS plumbing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TileSpMSpV, csc_tiled_kernel
from repro.errors import ShapeError, TileError
from repro.formats import COOMatrix
from repro.gpusim import Device, RTX3090
from repro.semiring import MIN_PLUS
from repro.tiles import TiledMatrix, TiledVector
from repro.vectors import SparseVector, random_sparse_vector

from ..conftest import random_dense


def cases():
    return st.tuples(st.integers(1, 70), st.integers(1, 70),
                     st.sampled_from([2, 4, 16, 32]),
                     st.integers(0, 10**6), st.floats(0.0, 0.5))


class TestCscKernel:
    @given(cases())
    @settings(max_examples=50, deadline=None)
    def test_matches_dense(self, params):
        m, n, nt, seed, xdens = params
        d = random_dense(m, n, 0.2, seed=seed)
        At = TiledMatrix.from_coo(COOMatrix.from_dense(d).transpose(), nt)
        x = random_sparse_vector(n, xdens, seed=seed + 1)
        xt = TiledVector.from_sparse(x.indices, x.values, n, nt)
        y, c = csc_tiled_kernel(At, xt)
        assert np.allclose(y, d @ x.to_dense())
        c.check()

    def test_shape_mismatch(self):
        At = TiledMatrix.from_dense(np.eye(8), 4)   # A is 8x8
        with pytest.raises(ShapeError):
            csc_tiled_kernel(At, TiledVector.empty(9, 4))

    def test_tile_size_mismatch(self):
        At = TiledMatrix.from_dense(np.eye(8), 4)
        with pytest.raises(ShapeError):
            csc_tiled_kernel(At, TiledVector.empty(8, 2))

    def test_empty_vector(self):
        At = TiledMatrix.from_dense(np.eye(8), 4)
        y, c = csc_tiled_kernel(At, TiledVector.empty(8, 4))
        assert np.allclose(y, 0.0)
        assert c.atomic_ops == 0

    def test_work_proportional_to_active_columns(self):
        """The CSC form's whole point: untouched tile columns cost
        nothing — no full metadata scan."""
        d = random_dense(200, 200, 0.1, seed=3)
        At = TiledMatrix.from_coo(COOMatrix.from_dense(d).transpose(), 16)
        one = TiledVector.from_sparse(np.array([0]), np.array([1.0]),
                                      200, 16)
        many = TiledVector.from_dense(np.ones(200), 16)
        _, c_one = csc_tiled_kernel(At, one)
        _, c_many = csc_tiled_kernel(At, many)
        assert c_one.coalesced_read_bytes < c_many.coalesced_read_bytes / 4
        assert c_one.atomic_ops < c_many.atomic_ops

    def test_min_plus_semiring(self):
        d = np.zeros((4, 4))
        d[2, 1] = 5.0
        At = TiledMatrix.from_coo(COOMatrix.from_dense(d).transpose(), 4)
        xt = TiledVector.from_sparse(np.array([1]), np.array([3.0]), 4, 4,
                                     fill=np.inf)
        y, _ = csc_tiled_kernel(At, xt, semiring=MIN_PLUS)
        assert y[2] == 8.0 and np.isinf(y[0])


class TestModes:
    @pytest.mark.parametrize("mode", ["csr", "csc", "adaptive"])
    @given(cases())
    @settings(max_examples=25, deadline=None)
    def test_all_modes_agree(self, mode, params):
        m, n, nt, seed, xdens = params
        d = random_dense(m, n, 0.2, seed=seed)
        op = TileSpMSpV(d, nt=nt, mode=mode)
        x = random_sparse_vector(n, xdens, seed=seed + 2)
        assert np.allclose(op.multiply(x).to_dense(), d @ x.to_dense())

    def test_unknown_mode_rejected(self):
        with pytest.raises(TileError):
            TileSpMSpV(np.eye(4), nt=4, mode="magic")

    def test_bad_adaptive_threshold(self):
        with pytest.raises(TileError):
            TileSpMSpV(np.eye(4), nt=4, adaptive_threshold=1.5)

    def test_adaptive_picks_csc_when_very_sparse(self):
        d = random_dense(2000, 2000, 0.01, seed=4)
        dev = Device(RTX3090)
        op = TileSpMSpV(d, nt=16, mode="adaptive", device=dev,
                        adaptive_threshold=0.05)
        op.multiply(SparseVector(2000, np.array([7]), np.array([1.0])))
        assert any(r.name == "tile_spmspv_csc" for r in dev.timeline)

    def test_adaptive_picks_csr_when_dense(self):
        d = random_dense(200, 200, 0.1, seed=5)
        dev = Device(RTX3090)
        op = TileSpMSpV(d, nt=16, mode="adaptive", device=dev)
        op.multiply(random_sparse_vector(200, 0.5, seed=6))
        assert any(r.name == "tile_spmspv_csr" for r in dev.timeline)

    @pytest.mark.parametrize("k_active,expected", [
        (2, "csc"),    # 2/10 = 0.2 < threshold -> column form
        (3, "csr"),    # 3/10 = 0.3 == threshold -> row form (not <)
        (4, "csr"),    # 4/10 = 0.4 > threshold -> row form
    ])
    def test_adaptive_threshold_boundary(self, k_active, expected):
        """The adaptive rule is a strict less-than on the active-tile
        fraction; a fraction exactly equal to the threshold stays on
        the CSR form."""
        n, nt = 160, 16                      # 10 vector tiles
        d = random_dense(n, n, 0.1, seed=10)
        dev = Device(RTX3090)
        op = TileSpMSpV(d, nt=nt, mode="adaptive", device=dev,
                        adaptive_threshold=0.3)
        # one nonzero in each of the first k_active tiles
        idx = np.arange(k_active) * nt
        x = SparseVector(n, idx, np.ones(k_active))
        xt = op._as_tiled_vector(x)
        assert xt.n_nonempty_tiles == k_active
        assert op._pick_kernel(xt) == expected
        # the choice is what actually launches
        op.multiply(x)
        assert any(r.name == f"tile_spmspv_{expected}"
                   for r in dev.timeline)
        other = "csc" if expected == "csr" else "csr"
        assert not any(r.name == f"tile_spmspv_{other}"
                       for r in dev.timeline)

    def test_transposed_tiling_cached(self):
        op = TileSpMSpV(np.eye(8), nt=4, mode="csc")
        op.multiply(SparseVector(8, np.array([0]), np.array([1.0])))
        first = op._transposed_tiled
        op.multiply(SparseVector(8, np.array([1]), np.array([1.0])))
        assert op._transposed_tiled is first

    def test_csc_faster_than_csr_at_extreme_sparsity(self):
        """The adaptive rationale: one-nonzero input on a big matrix
        should cost less via the column form (simulated time)."""
        d = random_dense(3000, 3000, 0.01, seed=7)
        x = SparseVector(3000, np.array([17]), np.array([1.0]))
        times = {}
        for mode in ("csr", "csc"):
            dev = Device(RTX3090)
            TileSpMSpV(d, nt=16, mode=mode, device=dev).multiply(x)
            times[mode] = dev.elapsed_ms
        assert times["csc"] < times["csr"]


class TestMaskedMultiply:
    @pytest.fixture
    def op_and_ref(self):
        d = random_dense(60, 60, 0.15, seed=8)
        x = random_sparse_vector(60, 0.3, seed=9)
        return TileSpMSpV(d, nt=16), d @ x.to_dense(), x

    def test_bool_mask(self, op_and_ref):
        op, ref, x = op_and_ref
        keep = np.zeros(60, dtype=bool)
        keep[::2] = True
        y = op.multiply(x, mask=keep)
        expected = np.where(keep, ref, 0.0)
        assert np.allclose(y.to_dense(), expected)

    def test_complement_mask(self, op_and_ref):
        op, ref, x = op_and_ref
        keep = np.zeros(60, dtype=bool)
        keep[::2] = True
        y = op.multiply(x, mask=keep, mask_complement=True)
        assert np.allclose(y.to_dense(), np.where(~keep, ref, 0.0))

    def test_sparse_vector_mask(self, op_and_ref):
        op, ref, x = op_and_ref
        mask = SparseVector(60, np.arange(10), np.ones(10))
        y = op.multiply(x, mask=mask)
        expected = ref.copy()
        expected[10:] = 0.0
        assert np.allclose(y.to_dense(), expected)

    def test_tiled_vector_mask(self, op_and_ref):
        op, ref, x = op_and_ref
        mv = np.zeros(60)
        mv[:20] = 1.0
        mask = TiledVector.from_dense(mv, 16)
        y = op.multiply(x, mask=mask)
        expected = ref.copy()
        expected[20:] = 0.0
        assert np.allclose(y.to_dense(), expected)

    def test_bfs_style_complemented_mask(self, op_and_ref):
        """y<!visited> = A x — the paper's BFS filter as a mask."""
        op, ref, x = op_and_ref
        visited = SparseVector(60, np.arange(30), np.ones(30))
        y = op.multiply(x, mask=visited, mask_complement=True)
        assert np.all(y.indices >= 30)

    def test_mask_length_mismatch(self, op_and_ref):
        op, _, x = op_and_ref
        with pytest.raises(ShapeError):
            op.multiply(x, mask=np.zeros(59, dtype=bool))
        with pytest.raises(ShapeError):
            op.multiply(x, mask=SparseVector.empty(59))

    def test_mask_charged_on_device(self, op_and_ref):
        op, _, x = op_and_ref
        dev = Device(RTX3090)
        op.device = dev
        op.multiply(x, mask=np.ones(60, dtype=bool))
        assert any(r.name == "tile_spmspv_mask" for r in dev.timeline)
