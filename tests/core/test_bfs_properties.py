"""End-to-end BFS correctness properties of the active-tile engine.

Every kernel, forced across a whole traversal via
:meth:`KernelSelector.fixed`, with extraction on and off, must produce
the exact level sets of the independent CPU oracle
(:func:`repro.graphs.bfs_levels`) — on random graphs, disconnected
graphs (unreachable vertices stay ``-1``) and power-law RMAT graphs.
MS-BFS must agree with one single-source traversal per packed source.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KernelSelector, MultiSourceBFS, TileBFS
from repro.formats import COOMatrix
from repro.graphs import bfs_levels
from repro.matrices.generators import rmat

from ..conftest import random_graph_coo

FORCED = ["push_csc", "push_csr", "pull_csc"]


def disconnected_graph(seed=0):
    """Two random components with no edges between them."""
    a = random_graph_coo(40, avg_degree=4.0, seed=seed)
    b = random_graph_coo(25, avg_degree=3.0, seed=seed + 1)
    n = 40 + 25
    row = np.concatenate([a.row, b.row + 40])
    col = np.concatenate([a.col, b.col + 40])
    return COOMatrix((n, n), row, col, np.ones(len(row)))


@pytest.mark.parametrize("kernel", FORCED)
@pytest.mark.parametrize("extract_threshold", [0, 2])
def test_forced_kernel_matches_oracle(kernel, extract_threshold):
    coo = random_graph_coo(130, avg_degree=5.0, seed=17)
    bfs = TileBFS(coo, nt=8, selector=KernelSelector.fixed(kernel),
                  extract_threshold=extract_threshold)
    for source in (0, 64, 129):
        res = bfs.run(source)
        assert np.array_equal(res.levels, bfs_levels(coo, source))


@pytest.mark.parametrize("kernel", FORCED)
def test_forced_kernel_on_disconnected_graph(kernel):
    coo = disconnected_graph(seed=3)
    bfs = TileBFS(coo, nt=4, selector=KernelSelector.fixed(kernel))
    res = bfs.run(0)
    oracle = bfs_levels(coo, 0)
    assert np.array_equal(res.levels, oracle)
    # the second component must be untouched
    assert (res.levels[40:] == -1).all()
    assert (oracle[40:] == -1).all()


@pytest.mark.parametrize("extract_threshold", [0, 2])
def test_rmat_matches_oracle(extract_threshold):
    coo = rmat(8, edge_factor=8, seed=5)
    bfs = TileBFS(coo, extract_threshold=extract_threshold)
    for source in (0, 100):
        res = bfs.run(source)
        assert np.array_equal(res.levels, bfs_levels(coo, source))


@given(st.integers(10, 120), st.integers(0, 10**5),
       st.floats(1.0, 8.0), st.sampled_from([2, 8, 32]))
@settings(max_examples=25, deadline=None)
def test_property_levels_match_oracle(n, seed, avg_degree, nt):
    coo = random_graph_coo(n, avg_degree=avg_degree, seed=seed)
    bfs = TileBFS(coo, nt=nt)
    source = seed % n
    assert np.array_equal(bfs.run(source).levels,
                          bfs_levels(coo, source))


@pytest.mark.parametrize("kernel", FORCED)
def test_compute_parents_validity(kernel):
    coo = random_graph_coo(110, avg_degree=5.0, seed=23)
    bfs = TileBFS(coo, nt=8, selector=KernelSelector.fixed(kernel))
    res = bfs.run(0)
    parents = bfs.compute_parents(res)
    dense = coo.to_dense() != 0
    for v in range(110):
        if res.levels[v] <= 0:          # source or unreachable
            assert parents[v] == -1
            continue
        p = parents[v]
        assert res.levels[p] == res.levels[v] - 1
        assert dense[v, p]              # A[v, p] is the edge p -> v


def test_msbfs_matches_per_source_runs():
    coo = random_graph_coo(150, avg_degree=5.0, seed=31)
    sources = [0, 7, 42, 149]
    res = MultiSourceBFS(coo).run(sources)
    bfs = TileBFS(coo)
    for s in sources:
        assert np.array_equal(res.levels_from(s), bfs.run(s).levels)
        assert np.array_equal(res.levels_from(s), bfs_levels(coo, s))


def test_msbfs_disconnected_sources():
    coo = disconnected_graph(seed=8)
    res = MultiSourceBFS(coo).run([0, 50])
    assert (res.levels_from(0)[40:] == -1).all()
    assert (res.levels_from(50)[:40] == -1).all()
