"""Equivalence of the active-set kernels against the seed oracles.

The active-set rewrite of :mod:`repro.core.spmspv_kernels` must be a
pure host-side optimisation: for every input, the gather-plan kernels
return the same ``y`` as the O(nnz) mask-based seed implementations
(preserved in :mod:`repro.core.reference_kernels`) and **byte-identical
hardware counters** — the modeled GPU always priced skipped work
correctly, so no counter may move.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import (batched_tiled_kernel, coo_side_kernel,
                        csc_tiled_kernel,
                        reference_batched_tiled_kernel,
                        reference_coo_side_kernel,
                        reference_csc_tiled_kernel,
                        reference_tiled_kernel, tiled_kernel)
from repro.formats import COOMatrix
from repro.semiring import MIN_PLUS, OR_AND, PLUS_TIMES
from repro.tiles import TiledMatrix, TiledVector
from repro.tiles.extraction import (IndexedSideMatrix,
                                    split_very_sparse_tiles)

from ..conftest import random_dense


def assert_counters_identical(new, ref):
    """Every counter field must match byte-for-byte (exact equality,
    no tolerance)."""
    for f in dataclasses.fields(ref):
        a, b = getattr(new, f.name), getattr(ref, f.name)
        assert a == b and type(a) is type(b), (
            f"counter {f.name}: active-set {a!r} != reference {b!r}")


def assert_y_identical(y_new, y_ref):
    assert y_new.dtype == y_ref.dtype
    assert np.array_equal(y_new, y_ref, equal_nan=True)


def frontier(n, density, seed, nt, fill=0.0):
    """A random sparse vector at the given density, as a TiledVector."""
    r = np.random.default_rng(seed)
    k = int(round(n * density))
    idx = r.choice(n, size=k, replace=False) if k else np.zeros(0, int)
    vals = 1.0 + r.random(k)
    return TiledVector.from_sparse(idx, vals, n, nt, fill=fill)


DENSITIES = [0.0, 0.002, 0.01, 0.1, 1.0]
SHAPES = [(64, 64, 4), (200, 120, 8), (333, 333, 16), (96, 50, 16)]


@pytest.mark.parametrize("m,n,nt", SHAPES)
@pytest.mark.parametrize("density", DENSITIES)
def test_tiled_kernel_equivalence(m, n, nt, density):
    A = TiledMatrix.from_dense(random_dense(m, n, 0.05, seed=m + nt), nt)
    x = frontier(n, density, seed=int(density * 1000) + n, nt=nt)
    y_new, c_new = tiled_kernel(A, x)
    y_ref, c_ref = reference_tiled_kernel(A, x)
    assert_y_identical(y_new, y_ref)
    assert_counters_identical(c_new, c_ref)


@pytest.mark.parametrize("m,n,nt", SHAPES)
@pytest.mark.parametrize("density", DENSITIES)
def test_csc_kernel_equivalence(m, n, nt, density):
    coo = COOMatrix.from_dense(random_dense(m, n, 0.05, seed=m + nt + 1))
    At = TiledMatrix.from_coo(coo.transpose(), nt)
    x = frontier(n, density, seed=int(density * 1000) + m, nt=nt)
    y_new, c_new = csc_tiled_kernel(At, x)
    y_ref, c_ref = reference_csc_tiled_kernel(At, x)
    assert_y_identical(y_new, y_ref)
    assert_counters_identical(c_new, c_ref)


@pytest.mark.parametrize("m,n,nt", [(128, 96, 4), (200, 200, 16)])
def test_batched_kernel_equivalence(m, n, nt):
    A = TiledMatrix.from_dense(random_dense(m, n, 0.08, seed=7), nt)
    xs = [frontier(n, d, seed=b, nt=nt)
          for b, d in enumerate([0.0, 0.005, 0.05, 1.0])]
    Y_new, c_new = batched_tiled_kernel(A, xs)
    Y_ref, c_ref = reference_batched_tiled_kernel(A, xs)
    assert_y_identical(Y_new, Y_ref)
    assert_counters_identical(c_new, c_ref)


@pytest.mark.parametrize("density", DENSITIES)
def test_coo_side_kernel_equivalence(density):
    d = random_dense(150, 130, 0.01, seed=11)
    side = IndexedSideMatrix.from_coo(COOMatrix.from_dense(d), 16)
    x = frontier(130, density, seed=3, nt=16)
    y_new, c_new = coo_side_kernel(side, x)
    y_ref, c_ref = reference_coo_side_kernel(side, x)
    assert_y_identical(y_new, y_ref)
    assert_counters_identical(c_new, c_ref)


def test_extracted_side_only_matrix():
    """A matrix whose tiles are all very sparse: everything lives in
    the COO side after extraction, the tiled part is empty."""
    d = np.zeros((64, 64))
    d[5, 9] = 2.0
    d[40, 61] = 3.0
    d[63, 0] = 4.0
    hybrid = split_very_sparse_tiles(COOMatrix.from_dense(d), 16,
                                     threshold=8)
    assert hybrid.tiled.nnz == 0 and hybrid.side.nnz == 3
    side = IndexedSideMatrix.from_coo(hybrid.side, 16)
    x = frontier(64, 0.2, seed=5, nt=16)
    y_new, c_new = coo_side_kernel(side, x)
    y_ref, c_ref = reference_coo_side_kernel(side, x)
    assert_y_identical(y_new, y_ref)
    assert_counters_identical(c_new, c_ref)
    # the empty tiled part must also agree
    y_new, c_new = tiled_kernel(hybrid.tiled, x)
    y_ref, c_ref = reference_tiled_kernel(hybrid.tiled, x)
    assert_y_identical(y_new, y_ref)
    assert_counters_identical(c_new, c_ref)


def test_accumulating_into_prior_y_matches_reference():
    """The scatter-merge fast path must not engage (or must stay
    exact) when the accumulator already holds values — the side kernel
    runs after the tiled kernel on the same y."""
    A = TiledMatrix.from_dense(random_dense(60, 60, 0.1, seed=21), 4)
    x = frontier(60, 0.3, seed=22, nt=4)
    y0 = np.zeros(60)
    y0[::3] = 7.5
    y_new, _ = tiled_kernel(A, x, y_dense=y0.copy())
    y_ref, _ = reference_tiled_kernel(A, x, y_dense=y0.copy())
    assert_y_identical(y_new, y_ref)


@pytest.mark.parametrize("density", [0.0, 0.05, 1.0])
def test_min_plus_semiring_equivalence(density):
    """Non-default semirings take the general ``add.at`` merge path and
    still agree with the oracle."""
    A = TiledMatrix.from_dense(random_dense(80, 80, 0.08, seed=31), 8)
    x = frontier(80, density, seed=32, nt=8, fill=np.inf)
    y_new, c_new = tiled_kernel(A, x, semiring=MIN_PLUS)
    y_ref, c_ref = reference_tiled_kernel(A, x, semiring=MIN_PLUS)
    assert_y_identical(y_new, y_ref)
    assert_counters_identical(c_new, c_ref)


def test_coo_side_empty_hit_dtype_fix():
    """Satellite regression: the empty-hit path used to allocate the
    x-value buffer as float64 regardless of the semiring, which breaks
    integer semirings (bitwise mul on a float operand)."""
    coo = COOMatrix((32, 32), np.array([2]), np.array([3]),
                    np.array([3], dtype=np.uint64))  # column tile 0 only
    side = IndexedSideMatrix.from_coo(coo, 16)
    # frontier lives in column tile 1: the side's only tile misses
    x = TiledVector.from_sparse(np.array([20]), np.array([1.0]), 32, 16)
    y, c = coo_side_kernel(side, x, semiring=OR_AND)
    assert y.dtype == OR_AND.dtype
    assert not y.any()
    c.check()


def test_column_gather_structure():
    """The plan-time grouping indexes exactly the stored structure."""
    A = TiledMatrix.from_dense(random_dense(100, 90, 0.1, seed=41), 8)
    g = A.column_gather()
    assert g is A.column_gather()          # cached
    # every stored tile appears exactly once, under its own column
    assert np.array_equal(np.sort(g.coltile_tiles),
                          np.arange(A.n_nonempty_tiles))
    for c in range(A.n_tile_cols):
        tiles = g.coltile_tiles[
            g.coltile_tile_ptr[c]:g.coltile_tile_ptr[c + 1]]
        assert np.all(A.tile_colidx[tiles] == c)
    # the entry permutation covers all entries, grouped consistently
    assert np.array_equal(np.sort(g.coltile_entry_perm),
                          np.arange(A.nnz))
    tile_nnz = A.tile_nnz()
    for c in range(A.n_tile_cols):
        n_entries = g.coltile_entry_ptr[c + 1] - g.coltile_entry_ptr[c]
        tiles = g.coltile_tiles[
            g.coltile_tile_ptr[c]:g.coltile_tile_ptr[c + 1]]
        assert n_entries == tile_nnz[tiles].sum()


def test_scatter_merge_matches_add_at():
    """The bincount fast path is bit-identical to ``np.add.at`` on a
    zeroed accumulator, and falls back for non-zero bases."""
    r = np.random.default_rng(51)
    idx = r.integers(0, 40, size=500)
    vals = r.standard_normal(500)
    fast = np.zeros(40)
    PLUS_TIMES.scatter_merge(fast, idx, vals)
    slow = np.zeros(40)
    np.add.at(slow, idx, vals)
    assert np.array_equal(fast, slow)
    # non-zero base: still exact (general path)
    base = r.standard_normal(40)
    fast2, slow2 = base.copy(), base.copy()
    PLUS_TIMES.scatter_merge(fast2, idx, vals)
    np.add.at(slow2, idx, vals)
    assert np.array_equal(fast2, slow2)
