"""Tests for batched SpMSpV and BFS parent-tree reconstruction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TileBFS, TileSpMSpV
from repro.core.spmspv_kernels import batched_tiled_kernel
from repro.errors import ShapeError
from repro.gpusim import Device, RTX3090
from repro.tiles import TiledMatrix, TiledVector
from repro.vectors import SparseVector, random_sparse_vector

from ..conftest import random_dense, random_graph_coo


class TestBatchedKernel:
    def test_matches_individual(self):
        d = random_dense(60, 60, 0.15, seed=1)
        tm = TiledMatrix.from_dense(d, 16)
        xs = [TiledVector.from_dense(
            (np.random.default_rng(i).random(60) < 0.2) * 1.0, 16)
            for i in range(4)]
        Y, c = batched_tiled_kernel(tm, xs)
        for b, x in enumerate(xs):
            assert np.allclose(Y[b], d @ x.to_dense())
        c.check()
        assert c.launches == 1

    def test_empty_batch_rejected(self):
        tm = TiledMatrix.from_dense(np.eye(8), 4)
        with pytest.raises(ShapeError):
            batched_tiled_kernel(tm, [])

    def test_mixed_shapes_rejected(self):
        tm = TiledMatrix.from_dense(np.eye(8), 4)
        with pytest.raises(ShapeError):
            batched_tiled_kernel(tm, [TiledVector.empty(8, 4),
                                      TiledVector.empty(9, 4)])

    def test_tile_size_mismatch_rejected(self):
        tm = TiledMatrix.from_dense(np.eye(8), 4)
        with pytest.raises(ShapeError):
            batched_tiled_kernel(tm, [TiledVector.empty(8, 2)])

    def test_all_empty_vectors(self):
        tm = TiledMatrix.from_dense(np.eye(8), 4)
        Y, c = batched_tiled_kernel(tm, [TiledVector.empty(8, 4)] * 3)
        assert np.allclose(Y, 0.0)
        assert c.flops == 0

    def test_metadata_scanned_once(self):
        """The batch's raison d'etre: metadata traffic is per-batch,
        not per-vector."""
        d = random_dense(200, 200, 0.1, seed=2)
        tm = TiledMatrix.from_dense(d, 16)
        x = TiledVector.from_dense(np.ones(200), 16)
        _, c1 = batched_tiled_kernel(tm, [x])
        _, c4 = batched_tiled_kernel(tm, [x, x, x, x])
        meta = tm.n_nonempty_tiles * 16.0
        payload1 = c1.coalesced_read_bytes - meta
        payload4 = c4.coalesced_read_bytes - meta
        assert payload4 == pytest.approx(4 * payload1)


class TestMultiplyBatch:
    @given(st.integers(1, 6), st.integers(0, 10**5))
    @settings(max_examples=20, deadline=None)
    def test_matches_individual_multiplies(self, k, seed):
        d = random_dense(50, 50, 0.15, seed=seed)
        op = TileSpMSpV(d, nt=16)
        xs = [random_sparse_vector(50, 0.2, seed=seed + i)
              for i in range(k)]
        batch = op.multiply_batch(xs)
        for x, y in zip(xs, batch):
            ref = op.multiply(x)
            assert np.array_equal(y.indices, ref.indices)
            assert np.allclose(y.values, ref.values)

    def test_dense_output(self):
        d = random_dense(30, 30, 0.2, seed=3)
        op = TileSpMSpV(d, nt=16)
        xs = [random_sparse_vector(30, 0.3, seed=i) for i in range(3)]
        Y = op.multiply_batch(xs, output="dense")
        assert Y.shape == (3, 30)

    def test_unknown_output(self):
        op = TileSpMSpV(np.eye(4), nt=4)
        with pytest.raises(ShapeError):
            op.multiply_batch([SparseVector.empty(4)], output="tiled")

    def test_batch_cheaper_than_individual(self):
        d = random_dense(400, 400, 0.05, seed=4)
        op = TileSpMSpV(d, nt=16)
        xs = [random_sparse_vector(400, 0.05, seed=i) for i in range(8)]
        dev_b = Device(RTX3090)
        op.device = dev_b
        op.multiply_batch(xs)
        dev_i = Device(RTX3090)
        op.device = dev_i
        for x in xs:
            op.multiply(x)
        assert dev_b.elapsed_ms < dev_i.elapsed_ms

    def test_side_matrix_handled(self):
        d = random_dense(80, 80, 0.02, seed=5)   # scattered => side nnz
        op = TileSpMSpV(d, nt=16, extract_threshold=3)
        assert op.hybrid.side.nnz > 0
        xs = [random_sparse_vector(80, 0.3, seed=i) for i in range(2)]
        for x, y in zip(xs, op.multiply_batch(xs)):
            assert np.allclose(y.to_dense(), d @ x.to_dense())


class TestParents:
    def edge_set(self, coo):
        return set(zip(coo.col.tolist(), coo.row.tolist()))

    @given(st.integers(2, 120), st.integers(0, 10**5))
    @settings(max_examples=25, deadline=None)
    def test_valid_bfs_tree(self, n, seed):
        coo = random_graph_coo(n, 4.0, seed)
        bfs = TileBFS(coo, nt=4)
        res = bfs.run(seed % n)
        parents = bfs.compute_parents(res)
        edges = self.edge_set(coo)
        for v in range(n):
            if res.levels[v] > 0:
                p = parents[v]
                assert p >= 0
                assert res.levels[p] == res.levels[v] - 1
                assert (p, v) in edges
            else:
                assert parents[v] == -1

    def test_source_has_no_parent(self):
        coo = random_graph_coo(50, 4.0, seed=6)
        bfs = TileBFS(coo, nt=4)
        res = bfs.run(7)
        parents = bfs.compute_parents(res)
        assert parents[7] == -1

    def test_stored_on_result(self):
        coo = random_graph_coo(40, 4.0, seed=7)
        bfs = TileBFS(coo, nt=4)
        res = bfs.run(0)
        assert res.parents is None
        bfs.compute_parents(res)
        assert res.parents is not None

    def test_with_extraction(self):
        coo = random_graph_coo(120, 2.0, seed=8)
        bfs = TileBFS(coo, nt=16, extract_threshold=4)
        res = bfs.run(0)
        parents = bfs.compute_parents(res)
        edges = self.edge_set(coo)
        reached = np.flatnonzero(res.levels > 0)
        for v in reached:
            assert (parents[v], v) in edges
