"""Tests for the kernel-selection policy (paper §3.4 rule + Fig. 9
ablation hooks)."""

import pytest

from repro.core import (PULL_CSC, PUSH_CSC, PUSH_CSR, KernelSelector,
                        select_tile_size)
from repro.errors import TileError


class TestTileSizeRule:
    def test_paper_boundary(self):
        """§3.4: order > 10,000 -> 64x64 tiles, otherwise 32x32."""
        assert select_tile_size(10_000) == 32
        assert select_tile_size(10_001) == 64

    def test_small(self):
        assert select_tile_size(100) == 32

    def test_large(self):
        assert select_tile_size(1_000_000) == 64


class TestPaperRule:
    def test_rule1_sparse_frontier_pushes_csc(self):
        sel = KernelSelector()
        assert sel.choose(frontier_sparsity=0.005,
                          unvisited_fraction=0.9) == PUSH_CSC

    def test_rule2_dense_frontier_pushes_csr(self):
        sel = KernelSelector()
        assert sel.choose(frontier_sparsity=0.05,
                          unvisited_fraction=0.9) == PUSH_CSR

    def test_rule2_boundary_inclusive(self):
        """Paper: 'greater than or equal to 0.01' -> Push-CSR."""
        sel = KernelSelector()
        assert sel.choose(frontier_sparsity=0.01,
                          unvisited_fraction=0.9) == PUSH_CSR

    def test_rule3_few_unvisited_pulls(self):
        sel = KernelSelector()
        assert sel.choose(frontier_sparsity=0.2,
                          unvisited_fraction=0.01) == PULL_CSC

    def test_pull_guard_thin_tail_frontier_stays_push(self):
        """A tiny frontier never pulls even when unvisited is small
        (the push/pull guard for long-diameter matrices)."""
        sel = KernelSelector()
        assert sel.choose(frontier_sparsity=0.001,
                          unvisited_fraction=0.01) == PUSH_CSC


class TestAblationPoints:
    def test_k1_always_push_csc(self):
        sel = KernelSelector.k1()
        for fs, uv in ((0.5, 0.01), (0.001, 0.9), (0.9, 0.001)):
            assert sel.choose(fs, uv) == PUSH_CSC

    def test_k1_k2_never_pulls(self):
        sel = KernelSelector.k1_k2()
        assert sel.choose(0.5, 0.001) == PUSH_CSR
        assert sel.choose(0.001, 0.001) == PUSH_CSC

    def test_full_set(self):
        sel = KernelSelector.k1_k2_k3()
        assert sel.enabled == frozenset({PUSH_CSC, PUSH_CSR, PULL_CSC})


class TestValidation:
    def test_k1_required(self):
        with pytest.raises(TileError):
            KernelSelector(enabled=frozenset({PUSH_CSR}))

    def test_unknown_kernel_rejected(self):
        with pytest.raises(TileError):
            KernelSelector(enabled=frozenset({PUSH_CSC, "magic"}))

    def test_bad_sparsity_threshold(self):
        with pytest.raises(TileError):
            KernelSelector(sparsity_threshold=0.0)
        with pytest.raises(TileError):
            KernelSelector(sparsity_threshold=1.0)

    def test_bad_pull_threshold(self):
        with pytest.raises(TileError):
            KernelSelector(pull_threshold=1.5)

    def test_custom_thresholds(self):
        sel = KernelSelector(sparsity_threshold=0.5, pull_threshold=0.5)
        assert sel.choose(0.4, 0.9) == PUSH_CSC
        assert sel.choose(0.6, 0.9) == PUSH_CSR
        assert sel.choose(0.6, 0.4) == PULL_CSC
