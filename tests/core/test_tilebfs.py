"""End-to-end TileBFS tests against networkx, across generator families
and kernel-selection policies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KernelSelector, TileBFS, tile_bfs
from repro.errors import ShapeError
from repro.formats import COOMatrix
from repro.gpusim import Device, RTX3060, RTX3090
from repro.matrices import (erdos_renyi, fem_like, mesh2d, rmat,
                            road_network)

from ..conftest import nx_levels, random_graph_coo

SELECTORS = [KernelSelector.k1(), KernelSelector.k1_k2(),
             KernelSelector.k1_k2_k3()]


class TestCorrectness:
    @pytest.mark.parametrize("selector", SELECTORS,
                             ids=["K1", "K1K2", "K1K2K3"])
    @pytest.mark.parametrize("nt", [4, 16, 32])
    def test_random_graph(self, selector, nt):
        coo = random_graph_coo(150, 5.0, seed=1)
        res = TileBFS(coo, nt=nt, selector=selector).run(0)
        assert np.array_equal(res.levels, nx_levels(coo, 0))

    @pytest.mark.parametrize("gen,args", [
        (erdos_renyi, (200, 4.0)),
        (fem_like, (256,)),
        (mesh2d, (15,)),
        (rmat, (8,)),
        (road_network, (14,)),
    ], ids=["er", "fem", "mesh", "rmat", "road"])
    def test_generator_families(self, gen, args):
        coo = gen(*args, seed=7)
        res = TileBFS(coo, nt=16).run(0)
        assert np.array_equal(res.levels, nx_levels(coo, 0))

    @given(st.integers(2, 120), st.integers(0, 10**5),
           st.floats(1.0, 8.0))
    @settings(max_examples=30, deadline=None)
    def test_property_random(self, n, seed, deg):
        coo = random_graph_coo(n, deg, seed)
        src = seed % n
        res = TileBFS(coo, nt=4).run(src)
        assert np.array_equal(res.levels, nx_levels(coo, src))

    def test_different_sources_consistent(self):
        coo = random_graph_coo(90, 4.0, seed=3)
        bfs = TileBFS(coo, nt=4)
        for src in (0, 10, 89):
            assert np.array_equal(bfs.run(src).levels, nx_levels(coo, src))

    def test_extraction_does_not_change_result(self):
        coo = random_graph_coo(200, 3.0, seed=4)
        a = TileBFS(coo, nt=16, extract_threshold=0).run(0).levels
        b = TileBFS(coo, nt=16, extract_threshold=4).run(0).levels
        assert np.array_equal(a, b)

    def test_multi_source(self):
        coo = random_graph_coo(100, 4.0, seed=5)
        res = TileBFS(coo, nt=4).run_multi([0, 50])
        ref0 = nx_levels(coo, 0)
        ref50 = nx_levels(coo, 50)
        both = np.where(ref0 < 0, ref50,
                        np.where(ref50 < 0, ref0, np.minimum(ref0, ref50)))
        assert np.array_equal(res.levels, both)


class TestEdgeCases:
    def test_isolated_source(self):
        coo = COOMatrix((5, 5), np.array([1]), np.array([2]))
        res = TileBFS(coo, nt=2).run(0)
        assert res.levels.tolist() == [0, -1, -1, -1, -1]
        assert res.n_reached == 1
        assert res.depth == 0

    def test_self_loop_only(self):
        coo = COOMatrix((4, 4), np.array([0]), np.array([0]))
        res = TileBFS(coo, nt=2).run(0)
        assert res.levels[0] == 0
        assert res.n_reached == 1

    def test_disconnected_components(self):
        coo = COOMatrix((6, 6), np.array([0, 1, 3, 4]),
                        np.array([1, 0, 4, 3]))
        res = TileBFS(coo, nt=2).run(0)
        assert res.levels.tolist() == [0, 1, -1, -1, -1, -1]

    def test_path_graph_depth(self):
        n = 33
        rows = np.concatenate([np.arange(n - 1), np.arange(1, n)])
        cols = np.concatenate([np.arange(1, n), np.arange(n - 1)])
        coo = COOMatrix((n, n), rows, cols)
        res = TileBFS(coo, nt=4).run(0)
        assert res.depth == n - 1
        # n-1 productive layers + the final empty-frontier probe
        assert len(res.iterations) == n

    def test_max_depth_truncates(self):
        coo = random_graph_coo(100, 4.0, seed=6)
        res = TileBFS(coo, nt=4).run(0, max_depth=2)
        assert res.levels.max() <= 2

    def test_source_out_of_range(self):
        bfs = TileBFS(COOMatrix.empty((4, 4)), nt=2)
        with pytest.raises(ShapeError):
            bfs.run(4)
        with pytest.raises(ShapeError):
            bfs.run(-1)

    def test_empty_sources_rejected(self):
        bfs = TileBFS(COOMatrix.empty((4, 4)), nt=2)
        with pytest.raises(ShapeError):
            bfs.run_multi([])

    def test_nonsquare_rejected(self):
        with pytest.raises(ShapeError):
            TileBFS(COOMatrix.empty((3, 4)), nt=2)


class TestNtSelection:
    def test_paper_rule_applied(self):
        small = TileBFS(random_graph_coo(100, 3.0, seed=7))
        assert small.nt == 32
        # order > 10000 -> 64 (build a sparse large graph cheaply)
        big = TileBFS(erdos_renyi(10_500, 2.0, seed=8))
        assert big.nt == 64

    def test_explicit_nt_honored(self):
        bfs = TileBFS(random_graph_coo(100, 3.0, seed=9), nt=16)
        assert bfs.nt == 16


class TestTraceAndDevice:
    def test_iteration_trace_depths_sequential(self):
        coo = random_graph_coo(150, 4.0, seed=10)
        res = TileBFS(coo, nt=16).run(0)
        depths = [it.depth for it in res.iterations]
        assert depths == list(range(1, len(depths) + 1))

    def test_new_vertices_sum_matches(self):
        coo = random_graph_coo(150, 4.0, seed=11)
        res = TileBFS(coo, nt=16).run(0)
        assert 1 + sum(it.new_vertices for it in res.iterations) == \
            res.n_reached

    def test_simulated_time_accumulates(self):
        coo = random_graph_coo(150, 4.0, seed=12)
        dev = Device(RTX3090)
        res = TileBFS(coo, nt=16, device=dev).run(0)
        assert res.simulated_ms > 0
        assert res.simulated_ms == pytest.approx(
            sum(it.simulated_ms for it in res.iterations))

    def test_3090_faster_than_3060_on_large_matrix(self):
        """The paper's scalability note (§4.3): the gain of the bigger
        card shows on large matrices; small ones are launch-bound."""
        coo = fem_like(30_000, nnz_per_row=60, seed=13)
        t = {}
        for spec in (RTX3060, RTX3090):
            dev = Device(spec)
            t[spec.name] = TileBFS(coo, device=dev).run(0).simulated_ms
        assert t["RTX 3090"] < t["RTX 3060"]

    def test_gteps(self):
        coo = random_graph_coo(200, 5.0, seed=14)
        dev = Device(RTX3090)
        res = TileBFS(coo, device=dev).run(0)
        assert res.gteps(coo.nnz) == pytest.approx(
            coo.nnz / (res.simulated_ms * 1e-3) / 1e9)

    def test_kernel_names_in_trace_valid(self):
        coo = mesh2d(20, seed=15)
        res = TileBFS(coo, nt=16).run(0)
        assert {it.kernel for it in res.iterations} <= \
            {"push_csc", "push_csr", "pull_csc"}

    def test_one_shot_wrapper(self):
        coo = random_graph_coo(80, 4.0, seed=16)
        res = tile_bfs(coo, 0, nt=4)
        assert np.array_equal(res.levels, nx_levels(coo, 0))


class TestDirectedGraphs:
    """Pull-CSC reads a vertex's stored column as its in-edges, which
    only holds on symmetric patterns; directed graphs must gate it off
    (the bug behind verify/repros/tilebfs_pull_direction.json)."""

    def test_plan_records_pattern_symmetry(self):
        und = random_graph_coo(80, 4.0, seed=2)
        assert TileBFS(und, nt=8).symmetric is True
        digraph = erdos_renyi(80, 4.0, seed=2, symmetric=False)
        assert TileBFS(digraph, nt=8).symmetric is False

    def test_pull_never_traced_on_directed_pattern(self):
        from repro.graphs import bfs_levels
        coo = erdos_renyi(120, 6.0, seed=1, symmetric=False)
        bfs = TileBFS(coo, nt=16, selector=KernelSelector.k1_k2_k3())
        for src in (0, 45, 119):
            res = bfs.run(src)
            assert "pull_csc" not in {it.kernel for it in res.iterations}
            assert np.array_equal(res.levels, bfs_levels(coo, src))

    @pytest.mark.parametrize("nt", [4, 16])
    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_directed_levels_match_reference(self, nt, seed):
        from repro.graphs import bfs_levels
        coo = erdos_renyi(64, 4.0, seed=seed, symmetric=False)
        res = TileBFS(coo, nt=nt).run(0)
        assert np.array_equal(res.levels, bfs_levels(coo, 0))

    def test_symmetric_pattern_still_allowed_to_pull(self):
        # the gate must not forbid Pull-CSC where it is valid: on a
        # dense symmetric pattern the K1K2K3 policy still reaches it
        coo = random_graph_coo(200, 12.0, seed=6)
        bfs = TileBFS(coo, nt=16, selector=KernelSelector.k1_k2_k3())
        kernels = set()
        for src in range(6):
            res = bfs.run(src)
            kernels |= {it.kernel for it in res.iterations}
            assert np.array_equal(res.levels, nx_levels(coo, src))
        assert "pull_csc" in kernels
