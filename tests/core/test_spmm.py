"""TileSpMM: bit-identity with the batched engine, counter
decomposition, kernel parity, and the column-slice equivalence.

The satellite acceptance property: a :class:`TileSpMM` run on a block
assembled from ``B`` sparse vectors is **bit-identical** — values and
counter decomposition — to :class:`BatchedSpMSpV` on those vectors
densified, across semirings including the uint64 ``OR_AND`` algebra.
"""

import numpy as np
import pytest

from repro.core import (SPMM_MERGE_PATH, SPMM_ROW_WARP, BatchedSpMSpV,
                        KernelSelector, TileSpMM, TileSpMSpV,
                        row_tile_imbalance, spmm_merge_path_kernel,
                        spmm_row_warp_kernel)
from repro.errors import ShapeError
from repro.gpusim import Device
from repro.semiring import MAX_TIMES, MIN_PLUS, OR_AND, PLUS_TIMES
from repro.tiles import TiledMatrix
from repro.vectors import DenseBlock, SparseVector, random_sparse_vector

from ..conftest import random_coo, random_dense

SEMIRINGS = [PLUS_TIMES, MIN_PLUS, MAX_TIMES, OR_AND]

M, N, NT = 90, 72, 8


def _bit_equal(a, b):
    a, b = np.ascontiguousarray(a), np.ascontiguousarray(b)
    if a.dtype.kind in "iu":
        return np.array_equal(a, b)
    return np.array_equal(a.view(np.uint64), b.view(np.uint64))


def inputs(sr, B, seed=0, m=M, n=N):
    """A matrix and B sparse vectors in the semiring's dtype."""
    coo = random_coo(m, n, 0.07, seed=seed)
    vecs = [random_sparse_vector(n, 0.05 + 0.1 * b, seed=seed + 10 + b)
            for b in range(B)]
    if sr.dtype.kind == "u":
        coo = type(coo)(coo.shape, coo.row, coo.col,
                        coo.val.copy().view(np.uint64))
        vecs = [SparseVector(v.n, v.indices, v.values.view(np.uint64))
                for v in vecs]
    return coo, vecs


# ----------------------------------------------------------------------
# the property test: SpMM over a densified batch == BatchedSpMSpV
# ----------------------------------------------------------------------
class TestBatchedEquivalence:
    @pytest.mark.parametrize("sr", SEMIRINGS, ids=lambda s: s.name)
    @pytest.mark.parametrize("B", [1, 3, 6])
    def test_block_matches_batched_bitwise(self, sr, B):
        coo, vecs = inputs(sr, B, seed=3)
        Y = TileSpMM(coo, nt=NT, semiring=sr).multiply_block(
            vecs, output="dense")
        Yb = BatchedSpMSpV(coo, nt=NT, semiring=sr).multiply_batch(
            vecs, output="dense")
        assert Y.shape == (M, B) and Yb.shape == (B, M)
        for b in range(B):
            assert _bit_equal(Y[:, b], Yb[b]), (sr.name, b)

    @pytest.mark.parametrize("sr", SEMIRINGS, ids=lambda s: s.name)
    def test_counter_decomposition_matches_batched_structure(self, sr):
        # both engines share one hybrid tiling (same plan-cache key),
        # so the tiled-part nnz driving the flops term is identical;
        # SpMM charges exactly 2 * nnz * B multiply-adds on it
        coo, vecs = inputs(sr, 4, seed=5)
        dev = Device()
        op = TileSpMM(coo, nt=NT, semiring=sr, device=dev)
        op.multiply_block(vecs)
        tiled_nnz = op.hybrid.tiled.nnz
        side_nnz = op.hybrid.side.nnz
        main = [r for r in dev.timeline
                if r.name.startswith("tile_spmm") and "side" not in r.name]
        assert len(main) == 1
        assert main[0].counters.flops == 2.0 * tiled_nnz * 4
        side = [r for r in dev.timeline if "coo_side" in r.name]
        assert bool(side) == bool(side_nnz)

    def test_sparse_output_matches_batched_sparse(self):
        coo, vecs = inputs(PLUS_TIMES, 3, seed=7)
        ys = TileSpMM(coo, nt=NT).multiply_block(vecs, output="sparse")
        yb = BatchedSpMSpV(coo, nt=NT).multiply_batch(
            vecs, output="sparse")
        for got, want in zip(ys, yb):
            assert np.array_equal(got.indices, want.indices)
            assert _bit_equal(got.values, want.values)


# ----------------------------------------------------------------------
# kernel parity and the merge-path byte bound
# ----------------------------------------------------------------------
class TestKernels:
    def test_kernels_bit_identical_and_merge_bytes_bounded(self):
        A = TiledMatrix.from_dense(random_dense(M, N, 0.08, seed=2), NT)
        Xb = DenseBlock.from_dense(random_dense(N, 5, 0.6, seed=3), NT)
        Yr, cr = spmm_row_warp_kernel(A, Xb)
        Ym, cm = spmm_merge_path_kernel(A, Xb)
        assert _bit_equal(Yr, Ym)
        B = Xb.B
        # shared accounting: A streams once per block for both kernels
        common = (A.n_nonempty_tiles * 16.0
                  + A.nnz * (8.0 + A.index_bytes_per_entry()))
        assert cr.coalesced_read_bytes == common
        assert cm.coalesced_read_bytes == common
        assert cr.coalesced_write_bytes == cm.coalesced_write_bytes \
            == A.n_occupied_tile_rows() * A.nt * B * 8.0
        assert cr.flops == cm.flops == 2.0 * A.nnz * B
        # row-per-warp loads the B-wide X row once per *nonzero*,
        # merge-path once per distinct (tile, local column) segment
        assert cr.l2_read_bytes == A.nnz * B * 8.0
        segments = int(np.unique(
            A.tile_of_entry() * np.int64(A.nt) + A.local_col64()).size)
        assert cm.l2_read_bytes == segments * B * 8.0
        assert cm.shared_bytes == segments * B * 8.0
        assert segments <= A.nnz
        assert (cm.global_bytes + cm.l2_read_bytes
                <= cr.global_bytes + cr.l2_read_bytes)

    def test_dense_tile_gets_strict_segment_reuse(self):
        # a dense matrix repeats local columns within its tiles, so
        # merge-path stages strictly fewer X rows than row-per-warp
        A = TiledMatrix.from_dense(random_dense(32, 32, 0.9, seed=4), 8)
        Xb = DenseBlock.from_dense(random_dense(32, 4, 1.0, seed=5), 8)
        _, cr = spmm_row_warp_kernel(A, Xb)
        _, cm = spmm_merge_path_kernel(A, Xb)
        assert cm.l2_read_bytes < cr.l2_read_bytes

    def test_with_counters_off(self):
        A = TiledMatrix.from_dense(random_dense(M, N, 0.08, seed=2), NT)
        Xb = DenseBlock.from_dense(random_dense(N, 2, 0.5, seed=6), NT)
        Y_on, c = spmm_row_warp_kernel(A, Xb)
        Y_off, none = spmm_row_warp_kernel(A, Xb, with_counters=False)
        assert none is None and c is not None
        assert _bit_equal(Y_on, Y_off)

    def test_shape_and_tile_mismatch(self):
        A = TiledMatrix.from_dense(random_dense(M, N, 0.08, seed=2), NT)
        bad_rows = DenseBlock.from_dense(np.ones((N + 8, 2)), NT)
        with pytest.raises(ShapeError):
            spmm_row_warp_kernel(A, bad_rows)
        bad_nt = DenseBlock.from_dense(np.ones((N, 2)), 16)
        with pytest.raises(ShapeError):
            spmm_merge_path_kernel(A, bad_nt)


# ----------------------------------------------------------------------
# selection
# ----------------------------------------------------------------------
class TestSelection:
    def test_forced_kernels(self):
        coo, vecs = inputs(PLUS_TIMES, 2, seed=9)
        for forced in (SPMM_ROW_WARP, SPMM_MERGE_PATH):
            op = TileSpMM(coo, nt=NT,
                          selector=KernelSelector.fixed(forced))
            assert op.chosen_kernel() == forced
        ya = TileSpMM(coo, nt=NT, selector=KernelSelector.fixed(
            SPMM_ROW_WARP)).multiply_block(vecs, output="dense")
        yb = TileSpMM(coo, nt=NT, selector=KernelSelector.fixed(
            SPMM_MERGE_PATH)).multiply_block(vecs, output="dense")
        assert _bit_equal(ya, yb)

    def test_imbalance_rule(self):
        sel = KernelSelector(spmm_imbalance_threshold=4.0)
        assert sel.choose_spmm(1.0) == SPMM_ROW_WARP
        assert sel.choose_spmm(3.999) == SPMM_ROW_WARP
        assert sel.choose_spmm(4.0) == SPMM_MERGE_PATH

    def test_row_tile_imbalance_statistic(self):
        # perfectly balanced: equal nonzeros in every row tile
        X = np.zeros((16, 16))
        X[np.arange(16), np.arange(16)] = 1.0
        assert row_tile_imbalance(
            TiledMatrix.from_dense(X, 8)) == pytest.approx(1.0)
        # skewed: all mass in one row tile
        X2 = np.zeros((32, 32))
        X2[0, :16] = 1.0
        X2[31, 0] = 1.0
        imb = row_tile_imbalance(TiledMatrix.from_dense(X2, 8))
        assert imb > 1.5


# ----------------------------------------------------------------------
# column-slice equivalence (the B = 1 limit included)
# ----------------------------------------------------------------------
class TestColumnSlice:
    @pytest.mark.parametrize("sr", SEMIRINGS, ids=lambda s: s.name)
    def test_columns_match_single_vector_multiplies(self, sr):
        coo, vecs = inputs(sr, 3, seed=11)
        op = TileSpMM(coo, nt=NT, semiring=sr)
        Xb = op.as_block(vecs)
        Y = op.multiply_block(Xb, output="dense")
        single = TileSpMSpV(coo, nt=NT, semiring=sr)
        for j in range(Xb.B):
            y_ref = single.multiply(Xb.column_sparse(j), output="dense")
            assert _bit_equal(Y[:, j], y_ref), (sr.name, j)

    def test_single_vector_convenience(self):
        coo, vecs = inputs(PLUS_TIMES, 1, seed=13)
        op = TileSpMM(coo, nt=NT)
        y_dense = op.multiply(vecs[0], output="dense")
        y_sparse = op.multiply(vecs[0])
        ref = TileSpMSpV(coo, nt=NT).multiply(vecs[0], output="dense")
        assert _bit_equal(y_dense, ref)
        assert _bit_equal(y_sparse.to_dense(), ref)

    def test_dense_array_and_block_inputs_agree(self):
        coo, vecs = inputs(PLUS_TIMES, 3, seed=15)
        op = TileSpMM(coo, nt=NT)
        Xd = np.column_stack([v.to_dense() for v in vecs])
        assert _bit_equal(op.multiply_block(Xd, output="dense"),
                          op.multiply_block(vecs, output="dense"))

    def test_shape_mismatch_raises(self):
        coo, _ = inputs(PLUS_TIMES, 1, seed=17)
        op = TileSpMM(coo, nt=NT)
        with pytest.raises(ShapeError):
            op.multiply_block(np.ones((N + 8, 2)))
        with pytest.raises(ShapeError):
            op.multiply_block(np.ones((N, 2)), output="banana")
