"""Byte-identity of the active-tile BFS kernels against the seed oracles.

The frontier-proportional rewrite of :mod:`repro.core.bfs_kernels` must
be a pure host-side optimisation: for every input, every kernel returns
the same result **words** as the preserved seed implementation in
:mod:`repro.core.reference_bfs_kernels` and **byte-identical hardware
counters** — the modeled GPU always priced only the active side, so no
counter may move and every simulated-ms trace (Fig. 10) stays frozen.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import (bfs_kernels, msbfs_expand, pull_csc_kernel,
                        push_csc_kernel, push_csr_kernel,
                        reference_msbfs_expand, reference_pull_csc_kernel,
                        reference_push_csc_kernel,
                        reference_push_csr_kernel)
from repro.core.bfs_kernels import expand_vertex_tiles
from repro.core.tilebfs import TileBFS
from repro.errors import ShapeError
from repro.formats import COOMatrix
from repro.tiles import BitTiledMatrix, BitVector

from ..conftest import random_coo, random_graph_coo

KERNELS = {
    "push_csc": (push_csc_kernel, reference_push_csc_kernel, "csc"),
    "push_csr": (push_csr_kernel, reference_push_csr_kernel, "csr"),
    "pull_csc": (pull_csc_kernel, reference_pull_csc_kernel, "csc"),
}


def assert_counters_identical(new, ref):
    """Every counter field must match byte-for-byte (exact equality,
    no tolerance)."""
    for f in dataclasses.fields(ref):
        a, b = getattr(new, f.name), getattr(ref, f.name)
        assert a == b and type(a) is type(b), (
            f"counter {f.name}: active-tile {a!r} != reference {b!r}")


def assert_identical(res_new, res_ref):
    y_new, c_new = res_new
    y_ref, c_ref = res_ref
    assert np.array_equal(y_new.words, y_ref.words)
    assert_counters_identical(c_new, c_ref)


def graph(n, symmetric, seed):
    if symmetric:
        return random_graph_coo(n, avg_degree=5.0, seed=seed)
    return random_coo(n, n, density=0.04, seed=seed)


def tiled_pair(coo, nt, symmetric):
    a1 = BitTiledMatrix.from_coo(coo, nt, "csc")
    if symmetric:
        a2 = a1.as_reinterpreted("csr")
    else:
        a2 = BitTiledMatrix.from_coo(coo, nt, "csr")
    a2.attach_column_view(a1)
    return a1, a2


def vectors(n, nt, frontier_density, seed):
    rng = np.random.default_rng(seed)
    k = max(1, int(round(n * frontier_density)))
    fr = rng.choice(n, size=k, replace=False)
    x = BitVector.from_indices(fr, n, nt)
    mv = rng.choice(n, size=min(n, 2 * k), replace=False)
    m = BitVector.from_indices(mv, n, nt)
    m |= x
    return x, m


@pytest.mark.parametrize("kernel", sorted(KERNELS))
@pytest.mark.parametrize("symmetric", [True, False])
@pytest.mark.parametrize("nt", [4, 16, 64])
@pytest.mark.parametrize("frontier_density", [0.005, 0.05, 0.4, 0.95])
def test_byte_identical_grid(kernel, symmetric, nt, frontier_density):
    n = 210
    coo = graph(n, symmetric, seed=3)
    a1, a2 = tiled_pair(coo, nt, symmetric)
    x, m = vectors(n, nt, frontier_density, seed=11)
    new_fn, ref_fn, orient = KERNELS[kernel]
    A = a1 if orient == "csc" else a2
    assert_identical(new_fn(A, x, m), ref_fn(A, x, m))


@pytest.mark.parametrize("kernel", sorted(KERNELS))
@pytest.mark.parametrize("extract_threshold", [0, 3])
def test_byte_identical_extraction(kernel, extract_threshold):
    """The kernels must agree on the dense part left behind by
    very-sparse-tile extraction too (its tile histogram differs:
    near-empty tiles are gone)."""
    coo = random_graph_coo(140, avg_degree=3.0, seed=9)
    bfs = TileBFS(coo, nt=8, extract_threshold=extract_threshold)
    x, m = vectors(bfs.n, bfs.nt, 0.1, seed=21)
    new_fn, ref_fn, orient = KERNELS[kernel]
    A = bfs.A1 if orient == "csc" else bfs.A2
    assert_identical(new_fn(A, x, m), ref_fn(A, x, m))


@pytest.mark.parametrize("factors", [(0, 0), (10**9, 10**9)])
def test_byte_identical_forced_regimes(monkeypatch, factors):
    """Both host regimes of Push-CSR (bit gather / streaming sweep) and
    Pull-CSC (word level / vertex level) must be byte-identical, not
    just whichever the cost rule picks."""
    bg, pw = factors
    monkeypatch.setattr(bfs_kernels, "BIT_GATHER_FACTOR", bg)
    monkeypatch.setattr(bfs_kernels, "PULL_WORD_COST_FACTOR", pw)
    coo = random_graph_coo(180, avg_degree=6.0, seed=5)
    a1, a2 = tiled_pair(coo, 16, symmetric=True)
    for fd in (0.01, 0.3, 0.9):
        x, m = vectors(180, 16, fd, seed=int(fd * 1000))
        assert_identical(push_csr_kernel(a2, x, m),
                         reference_push_csr_kernel(a2, x, m))
        assert_identical(pull_csc_kernel(a1, x, m),
                         reference_pull_csc_kernel(a1, x, m))


def test_workspace_reuse_is_clean():
    """Passing a dirty ``out=`` workspace must not leak stale bits."""
    coo = random_graph_coo(120, avg_degree=4.0, seed=2)
    a1, a2 = tiled_pair(coo, 16, symmetric=True)
    x, m = vectors(120, 16, 0.1, seed=4)
    rng = np.random.default_rng(0)
    for new_fn, ref_fn, orient in KERNELS.values():
        A = a1 if orient == "csc" else a2
        ws = BitVector.from_indices(
            rng.choice(120, size=60, replace=False), 120, 16)
        y_ws, c_ws = new_fn(A, x, m, out=ws)
        assert y_ws is ws
        assert_identical((y_ws, c_ws), ref_fn(A, x, m))


def test_workspace_shape_mismatch_raises():
    coo = random_graph_coo(64, avg_degree=4.0, seed=1)
    a1, _ = tiled_pair(coo, 16, symmetric=True)
    x, m = vectors(64, 16, 0.1, seed=1)
    with pytest.raises(ShapeError):
        push_csc_kernel(a1, x, m, out=BitVector.zeros(64, 32))
    with pytest.raises(ShapeError):
        push_csc_kernel(a1, x, m, out=BitVector.zeros(80, 16))


def test_empty_frontier_and_saturated_mask():
    coo = random_graph_coo(96, avg_degree=4.0, seed=6)
    a1, a2 = tiled_pair(coo, 8, symmetric=True)
    empty = BitVector.zeros(96, 8)
    m = BitVector.from_indices(np.arange(10), 96, 8)
    full = BitVector.full(96, 8)
    some = BitVector.from_indices(np.arange(5), 96, 8)
    for new_fn, ref_fn, orient in KERNELS.values():
        A = a1 if orient == "csc" else a2
        assert_identical(new_fn(A, empty, m), ref_fn(A, empty, m))
        assert_identical(new_fn(A, some, full), ref_fn(A, some, full))


def test_msbfs_expand_matches_reference():
    coo = random_graph_coo(300, avg_degree=6.0, seed=8)
    csc = coo.to_csc()
    rng = np.random.default_rng(13)
    frontier = np.zeros(300, dtype=np.uint64)
    active = rng.choice(300, size=40, replace=False)
    frontier[active] = rng.integers(1, 2**63, size=40, dtype=np.uint64)
    new_w, new_a, new_e = msbfs_expand(csc, frontier)
    ref_w, ref_a, ref_e = reference_msbfs_expand(csc, frontier)
    assert np.array_equal(new_w, ref_w)
    assert (new_a, new_e) == (ref_a, ref_e)


class TestExpandVertexTiles:
    """Unit tests for the shared frontier-expansion helper (the
    jt / lengths / concat-ranges / repeat block Push-CSC and
    vertex-level Pull-CSC both used to inline)."""

    def test_against_python_loop(self):
        coo = random_graph_coo(90, avg_degree=5.0, seed=7)
        a1 = BitTiledMatrix.from_coo(coo, 8, "csc")
        vertices = np.array([0, 3, 17, 17, 42, 89], dtype=np.int64)
        lengths, gathered, local_col = expand_vertex_tiles(a1, vertices)
        exp_g, exp_lc, exp_len = [], [], []
        for v in vertices:
            jt, lc = divmod(int(v), 8)
            tiles = range(a1.tile_ptr[jt], a1.tile_ptr[jt + 1])
            exp_len.append(len(tiles))
            exp_g.extend(tiles)
            exp_lc.extend([lc] * len(tiles))
        assert np.array_equal(lengths, exp_len)
        assert np.array_equal(gathered, exp_g)
        assert np.array_equal(local_col, exp_lc)

    def test_empty_vertices(self):
        coo = random_graph_coo(40, avg_degree=4.0, seed=7)
        a1 = BitTiledMatrix.from_coo(coo, 8, "csc")
        lengths, gathered, local_col = expand_vertex_tiles(
            a1, np.zeros(0, dtype=np.int64))
        assert len(lengths) == len(gathered) == len(local_col) == 0
