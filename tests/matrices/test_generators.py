"""Tests for the synthetic matrix generators."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.matrices import (banded, block_diagonal, erdos_renyi, fem_like,
                            mesh2d, mesh3d, random_rectangular, rmat,
                            road_network)
from repro.tiles import tile_stats


def is_symmetric(coo):
    d = coo.to_dense()
    return np.array_equal(d != 0, (d != 0).T)


class TestDeterminism:
    @pytest.mark.parametrize("gen,args", [
        (banded, (200,)), (mesh2d, (10,)), (mesh3d, (5,)),
        (fem_like, (128,)), (block_diagonal, (4, 8)),
        (rmat, (7,)), (erdos_renyi, (100,)), (road_network, (10,)),
        (random_rectangular, (30, 40, 0.1)),
    ], ids=lambda g: getattr(g, "__name__", str(g)))
    def test_same_seed_same_matrix(self, gen, args):
        a = gen(*args, seed=42)
        b = gen(*args, seed=42)
        assert a.shape == b.shape and a.nnz == b.nnz
        assert np.array_equal(a.row, b.row)
        assert np.allclose(a.val, b.val)

    def test_different_seeds_differ(self):
        a = erdos_renyi(200, 6.0, seed=1)
        b = erdos_renyi(200, 6.0, seed=2)
        assert not (a.nnz == b.nnz and np.array_equal(a.row, b.row)
                    and np.array_equal(a.col, b.col))


class TestStructure:
    def test_banded_bandwidth(self):
        m = banded(100, bandwidth=3, extra_bands=0, seed=0)
        assert np.abs(m.row - m.col).max() <= 3

    def test_banded_symmetric(self):
        assert is_symmetric(banded(80, seed=1))

    def test_mesh2d_shape_and_degree(self):
        m = mesh2d(8, stencil=5)
        assert m.shape == (64, 64)
        degrees = np.bincount(m.row, minlength=64)
        assert degrees.max() <= 5

    def test_mesh2d_bad_stencil(self):
        with pytest.raises(ShapeError):
            mesh2d(5, stencil=7)

    def test_mesh3d_degree(self):
        m = mesh3d(4)
        degrees = np.bincount(m.row, minlength=64)
        assert degrees.max() <= 7

    def test_fem_like_dense_tiles(self):
        """FEM generator must produce dense-ish tiles (that's its job)."""
        m = fem_like(1024, nnz_per_row=40, block=16, seed=2)
        st = tile_stats(m, 16)
        assert st.in_tile_density > 0.15

    def test_fem_like_symmetric(self):
        assert is_symmetric(fem_like(256, seed=3))

    def test_block_diagonal_structure(self):
        m = block_diagonal(4, 8, density=1.0, seed=4)
        assert m.shape == (32, 32)
        assert np.all(m.row // 8 == m.col // 8)
        # exactly the block cells
        assert m.nnz == 4 * 64

    def test_block_diagonal_bad_density(self):
        with pytest.raises(ShapeError):
            block_diagonal(2, 4, density=0.0)

    def test_rmat_power_law_skew(self):
        m = rmat(10, edge_factor=8, seed=5)
        degrees = np.bincount(m.row, minlength=m.shape[0])
        # a power-law graph has a hub far above the mean degree
        assert degrees.max() > 8 * degrees.mean()

    def test_rmat_shape_is_power_of_two(self):
        assert rmat(6, seed=6).shape == (64, 64)

    def test_rmat_bad_scale(self):
        with pytest.raises(ShapeError):
            rmat(0)
        with pytest.raises(ShapeError):
            rmat(30)

    def test_rmat_bad_probabilities(self):
        with pytest.raises(ShapeError):
            rmat(5, a=0.8, b=0.2, c=0.2)

    def test_road_network_low_degree_long_diameter(self):
        m = road_network(20, seed=7)
        degrees = np.bincount(m.row, minlength=m.shape[0])
        assert degrees.mean() < 5.0
        from repro.graphs import bfs_levels

        levels = bfs_levels(m, 0)
        # grid-like diameter mostly survives the rewiring shortcuts
        assert levels.max() > 10

    def test_road_network_symmetric(self):
        assert is_symmetric(road_network(12, seed=8))

    def test_road_network_bad_fractions(self):
        with pytest.raises(ShapeError):
            road_network(5, rewire=1.5)

    def test_erdos_renyi_degree(self):
        m = erdos_renyi(500, avg_degree=8.0, seed=9)
        degrees = np.bincount(m.row, minlength=500)
        assert 4.0 < degrees.mean() < 20.0

    def test_random_rectangular(self):
        m = random_rectangular(30, 50, 0.05, seed=10)
        assert m.shape == (30, 50)
        assert m.nnz > 0

    def test_random_rectangular_bad_density(self):
        with pytest.raises(ShapeError):
            random_rectangular(3, 3, 0.0)

    def test_values_in_unit_interval(self):
        for m in (banded(50, seed=11), rmat(6, seed=12)):
            assert np.all(m.val > 0) and np.all(m.val <= 1.0)

    def test_no_duplicates(self):
        m = erdos_renyi(100, 8.0, seed=13)
        keys = m.row * 100 + m.col
        assert len(np.unique(keys)) == len(keys)
