"""Tests for the curated collection (Table 2 / Figure 12 stand-ins)."""

import pytest

from repro.errors import ShapeError
from repro.matrices import (ENTERPRISE_6, REPRESENTATIVE_12, all_entries,
                            entry, get_matrix, sweep_entries)

PAPER_12_NAMES = {"af_5_k101", "cant", "cavity23", "pdb1HYS", "fullb",
                  "ldoor", "in-2004", "msdoor", "roadNet-TX", "ML_Geer",
                  "333SP", "dielFilterV2clx"}

PAPER_6_NAMES = {"FB", "KR-21-128", "TW", "audikw_1", "roadCA",
                 "europe.osm"}


class TestNames:
    def test_representative_12_complete(self):
        assert {e.name for e in REPRESENTATIVE_12} == PAPER_12_NAMES

    def test_enterprise_6_complete(self):
        assert {e.name for e in ENTERPRISE_6} == PAPER_6_NAMES

    def test_entry_lookup(self):
        assert entry("ldoor").kind == "fem"
        assert entry("roadNet-TX").kind == "road"
        assert entry("in-2004").kind == "web"

    def test_unknown_entry(self):
        with pytest.raises(ShapeError):
            entry("nonexistent_matrix")

    def test_all_entries(self):
        assert len(all_entries()) == 18


class TestBuilders:
    def test_matrices_cached(self):
        a = get_matrix("cavity23")
        b = get_matrix("cavity23")
        assert a is b

    def test_all_square_and_nonempty(self):
        # only build the small ones here; the sweep builds the rest
        for name in ("cavity23", "pdb1HYS", "cant"):
            m = get_matrix(name)
            assert m.shape[0] == m.shape[1]
            assert m.nnz > 1000

    def test_per_row_density_matches_class(self):
        """Stand-ins preserve the original's nnz-per-row scale."""
        cant = get_matrix("cant")
        # paper: cant has 4M/62K ~ 65 nnz/row; allow a broad band
        per_row = cant.nnz / cant.shape[0]
        assert 30 < per_row < 200

    def test_road_standin_is_sparse(self):
        m = get_matrix("roadNet-TX")
        assert m.nnz / m.shape[0] < 8


class TestSweep:
    def test_sweep_has_class_mix(self):
        kinds = {e.kind for e in sweep_entries()}
        assert {"fem", "mesh", "web", "road", "random"} <= kinds

    def test_sweep_respects_max_n(self):
        for e in sweep_entries(max_n=4096):
            m = e.build()
            # mesh entries are k^2 with k = sqrt(n); allow slack
            assert m.shape[0] <= 4096 * 4

    def test_sweep_entries_buildable(self):
        e = sweep_entries(max_n=2048)[0]
        m = e.build()
        assert m.nnz > 0
