"""Cross-cutting property-based tests (hypothesis) on core invariants.

These state the *laws* the system must satisfy, independent of any
specific input: linearity of SpMSpV, equivalence of all storage routes,
BFS triangle properties, and conservation across tiling splits.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SparseVector, TileBFS, TileSpMSpV, tile_spmspv
from repro.formats import COOMatrix
from repro.tiles import (BitVector, TiledMatrix, TiledVector,
                         split_very_sparse_tiles)
from repro.vectors import random_sparse_vector

from .conftest import random_dense, random_graph_coo

mat_params = st.tuples(st.integers(1, 50), st.integers(1, 50),
                       st.integers(0, 10**6))
graph_params = st.tuples(st.integers(2, 90), st.integers(0, 10**6))


class TestSpMSpVLaws:
    @given(mat_params, st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_linearity_in_x(self, mp, xseed):
        """A(ax + by) == a(Ax) + b(Ay)."""
        m, n, seed = mp
        d = random_dense(m, n, 0.2, seed=seed)
        op = TileSpMSpV(d, nt=4)
        x = random_sparse_vector(n, 0.3, seed=xseed)
        y = random_sparse_vector(n, 0.3, seed=xseed + 1)
        lhs = op.multiply(
            SparseVector.from_dense(2.0 * x.to_dense()
                                    + 3.0 * y.to_dense())).to_dense()
        rhs = (2.0 * op.multiply(x).to_dense()
               + 3.0 * op.multiply(y).to_dense())
        assert np.allclose(lhs, rhs)

    @given(mat_params)
    @settings(max_examples=30, deadline=None)
    def test_identity_vector(self, mp):
        """A e_j == column j of A."""
        m, n, seed = mp
        d = random_dense(m, n, 0.25, seed=seed)
        j = seed % n
        y = tile_spmspv(d, SparseVector(n, np.array([j]),
                                        np.array([1.0])), nt=4)
        assert np.allclose(y.to_dense(), d[:, j])

    @given(mat_params, st.sampled_from([2, 4, 16, 32]),
           st.sampled_from([0, 1, 3]))
    @settings(max_examples=40, deadline=None)
    def test_tiling_invariance(self, mp, nt, threshold):
        """The result must not depend on nt or the extraction split."""
        m, n, seed = mp
        d = random_dense(m, n, 0.2, seed=seed)
        x = random_sparse_vector(n, 0.25, seed=seed + 9)
        ref = d @ x.to_dense()
        y = tile_spmspv(d, x, nt=nt, extract_threshold=threshold)
        assert np.allclose(y.to_dense(), ref)


class TestTilingConservation:
    @given(mat_params, st.sampled_from([2, 4, 16]), st.integers(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_split_partitions_nnz(self, mp, nt, threshold):
        m, n, seed = mp
        coo = COOMatrix.from_dense(random_dense(m, n, 0.2, seed=seed))
        hy = split_very_sparse_tiles(coo, nt, threshold)
        assert hy.tiled.nnz + hy.side.nnz == coo.nnz
        assert np.allclose(hy.to_coo().to_dense(), coo.to_dense())

    @given(mat_params, st.sampled_from([2, 4, 16]))
    @settings(max_examples=30, deadline=None)
    def test_tiled_matrix_preserves_frobenius(self, mp, nt):
        m, n, seed = mp
        d = random_dense(m, n, 0.2, seed=seed)
        tm = TiledMatrix.from_dense(d, nt)
        assert np.isclose((tm.values ** 2).sum(), (d ** 2).sum())


class TestBFSLaws:
    @given(graph_params)
    @settings(max_examples=25, deadline=None)
    def test_levels_differ_by_at_most_one_across_edges(self, gp):
        """For every edge (u, v): |level(u) - level(v)| <= 1 when both
        reached — the fundamental BFS invariant."""
        n, seed = gp
        coo = random_graph_coo(n, 4.0, seed)
        levels = TileBFS(coo, nt=4).run(seed % n).levels
        lu, lv = levels[coo.row], levels[coo.col]
        both = (lu >= 0) & (lv >= 0)
        assert np.all(np.abs(lu[both] - lv[both]) <= 1)
        # and an edge never connects reached to unreached
        assert not np.any((lu >= 0) ^ (lv >= 0))

    @given(graph_params)
    @settings(max_examples=25, deadline=None)
    def test_source_level_zero_and_contiguous(self, gp):
        n, seed = gp
        coo = random_graph_coo(n, 3.0, seed)
        src = seed % n
        levels = TileBFS(coo, nt=4).run(src).levels
        assert levels[src] == 0
        reached = np.unique(levels[levels >= 0])
        assert np.array_equal(reached, np.arange(len(reached)))

    @given(graph_params)
    @settings(max_examples=20, deadline=None)
    def test_symmetric_reachability(self, gp):
        """On an undirected graph, u reaches v iff v reaches u."""
        n, seed = gp
        coo = random_graph_coo(n, 3.0, seed)
        bfs = TileBFS(coo, nt=4)
        a, b = 0, n - 1
        assert (bfs.run(a).levels[b] >= 0) == (bfs.run(b).levels[a] >= 0)


class TestBitVectorLaws:
    @given(st.sets(st.integers(0, 79), max_size=40),
           st.sets(st.integers(0, 79), max_size=40),
           st.sampled_from([4, 16, 64]))
    @settings(max_examples=50)
    def test_set_algebra_homomorphism(self, a, b, nt):
        """BitVector ops mirror Python set ops exactly."""
        va = BitVector.from_indices(np.array(sorted(a), dtype=np.int64),
                                    80, nt)
        vb = BitVector.from_indices(np.array(sorted(b), dtype=np.int64),
                                    80, nt)
        assert set((va | vb).to_indices().tolist()) == a | b
        assert set((va & vb).to_indices().tolist()) == a & b
        assert set(va.andnot(vb).to_indices().tolist()) == a - b
        assert set(va.invert().to_indices().tolist()) == \
            set(range(80)) - a

    @given(st.sets(st.integers(0, 79), max_size=40),
           st.sampled_from([4, 16, 64]))
    @settings(max_examples=30)
    def test_double_invert_identity(self, a, nt):
        v = BitVector.from_indices(np.array(sorted(a), dtype=np.int64),
                                   80, nt)
        assert np.array_equal(v.invert().invert().words, v.words)


class TestTiledVectorLaws:
    @given(st.integers(1, 120), st.sampled_from([2, 4, 16, 32]),
           st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_tiled_dense_sparse_commute(self, n, nt, seed):
        """from_dense and from_sparse produce identical structures."""
        x = (np.random.default_rng(seed).random(n) < 0.3) * 1.0
        a = TiledVector.from_dense(x, nt)
        idx = np.flatnonzero(x)
        b = TiledVector.from_sparse(idx, x[idx], n, nt)
        assert np.array_equal(a.x_ptr, b.x_ptr)
        assert np.allclose(a.x_tile, b.x_tile)
