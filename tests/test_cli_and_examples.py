"""Smoke tests for the bench CLI and the fast example scripts."""

import pathlib
import subprocess
import sys

import pytest

from repro.bench.__main__ import main as bench_main

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestBenchCli:
    def test_unknown_experiment_rejected(self, capsys):
        assert bench_main(["nonsense"]) == 2
        assert "unknown experiments" in capsys.readouterr().out

    def test_single_experiment_prints_table(self, capsys):
        assert bench_main(["extraction"]) == 0
        out = capsys.readouterr().out
        assert "COO extraction" in out

    def test_table2_runs(self, capsys):
        assert bench_main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "ldoor" in out and "#tiles (64)" in out


@pytest.mark.parametrize("script", [
    "semiring_algebra.py",
    "format_tour.py",
])
def test_fast_examples_run_clean(script):
    """The lightweight examples must execute end to end (the heavier
    ones are exercised by the benchmark suite's machinery instead)."""
    proc = subprocess.run(
        [sys.executable, str(REPO / "examples" / script)],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip()
