"""Admission control: bounded queues turn overload into retriable
rejections (the satellite acceptance test: a saturated queue rejects
with a retriable error carrying the observed queue depth)."""

import numpy as np
import pytest

from repro.formats import COOMatrix
from repro.serving import (AdmissionController, GraphQueryService,
                           MultiplyQuery, ServiceSaturated,
                           ServingError, VirtualClock)

from ..conftest import random_dense

N = 64


@pytest.fixture(scope="module")
def coo():
    return COOMatrix.from_dense(random_dense(N, N, 0.08, seed=11))


def vec(seed, k=6):
    r = np.random.default_rng(seed)
    idx = np.sort(r.choice(N, size=k, replace=False))
    from repro.vectors import SparseVector
    return SparseVector(N, idx, 1.0 + r.random(k))


class TestController:
    def test_depth_bound(self):
        ac = AdmissionController(max_pending=2)
        ac.admit(0, 0.0)
        ac.admit(1, 0.0)
        with pytest.raises(ServiceSaturated) as ei:
            ac.admit(2, 0.0)
        err = ei.value
        assert err.retriable is True
        assert err.queue_depth == 2
        assert err.retry_after_ms >= ac.min_retry_ms
        assert isinstance(err, ServingError)

    def test_backlog_bound_retry_after_is_drain_time(self):
        ac = AdmissionController(max_pending=None, max_backlog_ms=10.0)
        ac.admit(5, 10.0)                      # at the bound: admitted
        with pytest.raises(ServiceSaturated) as ei:
            ac.admit(5, 17.5)
        # the hint is the time for the backlog to drain under budget
        assert ei.value.retry_after_ms == pytest.approx(7.5)
        assert ei.value.backlog_ms == pytest.approx(17.5)

    def test_stats_and_reject_rate(self):
        ac = AdmissionController(max_pending=1)
        ac.admit(0, 0.0)
        for _ in range(3):
            with pytest.raises(ServiceSaturated):
                ac.admit(1, 0.0)
        s = ac.stats()
        assert s["admitted"] == 1 and s["rejected"] == 3
        assert s["reject_rate"] == pytest.approx(0.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_pending=0)
        with pytest.raises(ValueError):
            AdmissionController(max_backlog_ms=-1.0)
        with pytest.raises(ValueError):
            AdmissionController(min_retry_ms=0.0)
        with pytest.raises(ValueError):
            AdmissionController(min_retry_ms=-5.0)

    def test_depth_rejection_with_zero_backlog_has_positive_retry(self):
        # The depth cap can trip while the modeled backlog is still 0
        # (requests queued, none executed); the hint must not be 0 —
        # that invites an immediate, equally doomed retry.
        ac = AdmissionController(max_pending=1, min_retry_ms=4.0)
        ac.admit(0, 0.0)
        with pytest.raises(ServiceSaturated) as ei:
            ac.admit(1, 0.0)
        assert ei.value.retry_after_ms == pytest.approx(4.0)
        assert ei.value.retry_after_ms > 0
        assert ac.stats()["min_retry_ms"] == pytest.approx(4.0)

    def test_backlog_rejection_respects_retry_floor(self):
        # Backlog barely over the bound: drain time would be ~1e-6 ms,
        # the configured floor wins on this rejection path too.
        ac = AdmissionController(max_pending=None, max_backlog_ms=10.0,
                                 min_retry_ms=2.5)
        with pytest.raises(ServiceSaturated) as ei:
            ac.admit(0, 10.0 + 1e-6)
        assert ei.value.retry_after_ms == pytest.approx(2.5)
        # and a genuinely deep backlog still reports real drain time
        with pytest.raises(ServiceSaturated) as ei:
            ac.admit(0, 30.0)
        assert ei.value.retry_after_ms == pytest.approx(20.0)

    def test_unbounded_admits_everything(self):
        ac = AdmissionController(max_pending=None, max_backlog_ms=None)
        for depth in (0, 10**6):
            ac.admit(depth, 1e9)
        assert ac.stats()["reject_rate"] == 0.0


class TestServiceBackpressure:
    def test_saturated_queue_rejects_with_depth(self, coo):
        svc = GraphQueryService(
            clock=VirtualClock(), max_batch=100, max_delay_ms=None,
            admission=AdmissionController(max_pending=3))
        svc.register_matrix("m", coo)
        for s in range(3):
            svc.submit_nowait(MultiplyQuery("m", vec(s)))
        with pytest.raises(ServiceSaturated) as ei:
            svc.submit_nowait(MultiplyQuery("m", vec(9)))
        assert ei.value.queue_depth == 3
        assert ei.value.retriable
        # the rejected request is in the log, not silently dropped
        assert svc.log.rejected == 1
        assert svc.stats()["admission"]["rejected"] == 1
        # draining frees capacity: the retry succeeds
        svc.drain()
        t = svc.submit_nowait(MultiplyQuery("m", vec(9)))
        assert svc.log.rejected == 1 and t is not None

    def test_rejected_requests_never_reach_a_queue(self, coo):
        svc = GraphQueryService(
            clock=VirtualClock(), max_batch=100, max_delay_ms=None,
            admission=AdmissionController(max_pending=1))
        svc.register_matrix("m", coo)
        svc.submit_nowait(MultiplyQuery("m", vec(1)))
        with pytest.raises(ServiceSaturated):
            svc.submit_nowait(MultiplyQuery("m", vec(2)))
        assert svc.pending == 1
        assert svc.stats()["queues"]["m"]["requests"] == 1
