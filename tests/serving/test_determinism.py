"""Determinism of the serving stack.

Three properties:

* a recorded request schedule replayed on a fresh service reproduces
  the *entire* request log bit-for-bit (fake-clock hypothesis
  property — what makes the serving benchmark CI-guardable);
* ``max_batch=1`` through the **async** submit path reproduces the
  single-vector engine exactly — results, device-timeline counters,
  and trace events (the service-layer extension of the batch queue's
  degenerate-batch oracle);
* no code in ``repro.serving`` reads the wall clock directly — every
  timestamp flows through the injectable clock (the satellite fix:
  the async dispatch loop must not sneak a bare ``time.monotonic()``
  past the fake-clock tests).
"""

import asyncio
import dataclasses
import pathlib

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TileSpMSpV
from repro.formats import COOMatrix
from repro.gpusim import Device
from repro.runtime import ExecutionContext, Tracer
from repro.semiring import MIN_PLUS, PLUS_TIMES
from repro.serving import (BFSQuery, GraphQueryService, MultiplyQuery,
                           PageRankQuery, ServiceSaturated,
                           AdmissionController, VirtualClock)
from repro.vectors import SparseVector

from ..conftest import random_dense

N = 96


def vec(seed, k=8):
    r = np.random.default_rng(seed)
    idx = np.sort(r.choice(N, size=k, replace=False))
    return SparseVector(N, idx, 1.0 + r.random(k))


def _replay(coo, schedule):
    """One deterministic traffic replay; returns the request log rows
    and the service stats."""
    clk = VirtualClock()
    svc = GraphQueryService(
        device=Device(), clock=clk, max_batch=3, max_delay_ms=1.0,
        admission=AdmissionController(max_pending=4))
    svc.register_matrix("m", coo)
    for gap_us, kind_code, seed in schedule:
        clk.advance(gap_us * 1e-6)
        svc.pump()
        if kind_code == 0:
            query = MultiplyQuery("m", vec(seed))
        elif kind_code == 1:
            query = BFSQuery("m", seed % N)
        else:
            query = PageRankQuery("m", max_iter=5)
        try:
            svc.submit_nowait(query)
        except ServiceSaturated:
            pass
    clk.advance(2e-3)
    svc.pump()
    svc.drain()
    return svc.log.to_dicts(), svc.stats()


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=2000),
                          st.integers(min_value=0, max_value=2),
                          st.integers(min_value=0, max_value=2**16)),
                min_size=1, max_size=12))
@settings(max_examples=15, deadline=None)
def test_replayed_schedule_is_bit_identical(schedule):
    coo = COOMatrix.from_dense(random_dense(N, N, 0.06, seed=31))
    rows1, stats1 = _replay(coo, schedule)
    rows2, stats2 = _replay(coo, schedule)
    assert rows1 == rows2           # submit/done times, batches, all
    assert stats1 == stats2


def test_async_batch_of_one_reproduces_single_path():
    """The satellite acceptance test: ``max_batch=1`` through the
    async path is launch-for-launch identical to the single-vector
    engine — counters and trace included."""
    coo = COOMatrix.from_dense(random_dense(N, N, 0.06, seed=31))
    seeds = [3, 11, 19, 27]

    for semiring in (PLUS_TIMES, MIN_PLUS):
        single_tracer = Tracer()
        single_ctx = ExecutionContext(device=Device(),
                                      tracer=single_tracer)
        single = TileSpMSpV(coo, semiring=semiring, device=single_ctx)

        served_tracer = Tracer()
        svc = GraphQueryService(device=Device(), tracer=served_tracer,
                                max_batch=1, max_delay_ms=None)
        svc.register_matrix("m", coo)

        async def main():
            await svc.start()
            try:
                return [await svc.submit(
                    MultiplyQuery("m", vec(s), semiring=semiring))
                    for s in seeds]
            finally:
                await svc.stop()

        served = asyncio.run(main())
        for s, y in zip(seeds, served):
            y_ref = single.multiply(vec(s))
            assert np.array_equal(y.indices, y_ref.indices)
            assert np.array_equal(y.values, y_ref.values)

        # trace events: same count, pairwise identical counters and
        # priced durations (kernel names / phase labels differ by
        # design, as in the batch queue's degenerate-batch oracle)
        assert len(served_tracer.events) == len(single_tracer.events)
        for qe, se in zip(served_tracer.events, single_tracer.events):
            assert qe.dur_ms == se.dur_ms
            for f in dataclasses.fields(se.counters):
                assert getattr(qe.counters, f.name) == \
                    getattr(se.counters, f.name), f.name
        assert svc.ctx.elapsed_ms == single_ctx.elapsed_ms
        # every request has its own batch of one, resolvable to its
        # exact launches
        for rec in svc.log.records:
            assert rec.batch_size == 1
            assert len(svc.events_for(rec.request_id)) == 1


def test_serving_package_never_reads_the_wall_clock():
    """Everything under ``repro.serving`` must take time from the
    injectable clock: a bare ``time.monotonic()`` (or friends) in the
    dispatch path would desynchronize fake-clock runs."""
    import repro.serving as serving
    pkg = pathlib.Path(serving.__file__).parent
    forbidden = ("time.monotonic()", "time.time()",
                 "time.perf_counter()", "monotonic_ns", "perf_counter_ns")
    for path in sorted(pkg.glob("*.py")):
        source = path.read_text(encoding="utf-8")
        for call in forbidden:
            assert call not in source, f"{path.name} calls {call}"
