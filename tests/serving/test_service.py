"""The graph-query service: registration, routing, coalescing, the
async submit path, and request-level observability."""

import asyncio

import numpy as np
import pytest

from repro.core import TileBFS, TileSpMSpV
from repro.formats import COOMatrix
from repro.gpusim import Device
from repro.graphs import pagerank
from repro.runtime import Tracer
from repro.semiring import MIN_PLUS
from repro.serving import (BFSQuery, GraphQueryService, MultiplyQuery,
                           PageRankQuery, UnknownMatrixError,
                           VirtualClock)

from ..conftest import random_dense

N = 96


@pytest.fixture(scope="module")
def coo():
    return COOMatrix.from_dense(random_dense(N, N, 0.06, seed=31))


def vec(seed, k=8):
    r = np.random.default_rng(seed)
    idx = np.sort(r.choice(N, size=k, replace=False))
    from repro.vectors import SparseVector
    return SparseVector(N, idx, 1.0 + r.random(k))


def make_service(coo, **kw):
    kw.setdefault("device", Device())
    kw.setdefault("clock", VirtualClock())
    svc = GraphQueryService(**kw)
    svc.register_matrix("m", coo)
    return svc


class TestRegistration:
    def test_duplicate_name_rejected(self, coo):
        svc = make_service(coo)
        with pytest.raises(ValueError):
            svc.register_matrix("m", coo)
        assert svc.matrices == ("m",)

    def test_unknown_matrix(self, coo):
        svc = make_service(coo)
        with pytest.raises(UnknownMatrixError) as ei:
            svc.submit_nowait(MultiplyQuery("nope", vec(1)))
        assert "m" in ei.value.known

    def test_unknown_query_type(self, coo):
        svc = make_service(coo)
        with pytest.raises(TypeError):
            svc.submit_nowait("just a string")

    def test_pin_registers_against_quota(self, coo):
        svc = make_service(coo)
        svc.register_matrix("pinned", coo, pin=True)
        assert svc.tenants.pinned("default") == 1
        assert svc.unpin_plans("pinned") is True
        assert svc.tenants.pinned("default") == 0


class TestQueryPaths:
    def test_multiply_matches_direct_engine(self, coo):
        svc = make_service(coo, max_batch=100)
        t = svc.submit_nowait(MultiplyQuery("m", vec(3)))
        assert not t.done
        y = t.result()                    # blocking get forces flush
        y_ref = TileSpMSpV(coo).multiply(vec(3))
        assert np.array_equal(y.indices, y_ref.indices)
        assert np.array_equal(y.values, y_ref.values)

    def test_multiply_semiring_and_dense_output(self, coo):
        svc = make_service(coo, max_batch=1)
        t = svc.submit_nowait(MultiplyQuery("m", vec(4),
                                            semiring=MIN_PLUS,
                                            output="dense"))
        assert t.done
        y_ref = TileSpMSpV(coo, semiring=MIN_PLUS).multiply(
            vec(4), output="dense")
        assert np.array_equal(t.value, y_ref)

    def test_bfs_matches_direct_engine(self, coo):
        svc = make_service(coo)
        t = svc.submit_nowait(BFSQuery("m", 0))
        assert t.done and t.record.kind == "bfs"
        ref = TileBFS(coo).run(0)
        assert np.array_equal(t.value.levels, ref.levels)

    def test_pagerank_matches_direct_and_memoizes(self, coo):
        svc = make_service(coo)
        t1 = svc.submit_nowait(PageRankQuery("m"))
        ranks_ref, iters_ref = pagerank(coo)
        assert np.allclose(t1.value[0], ranks_ref)
        assert t1.value[1] == iters_ref
        t2 = svc.submit_nowait(PageRankQuery("m"))
        assert svc.stats()["pagerank_memo"]["hits"] == 1
        # memo hands out copies: mutating a result must not poison it
        t2.value[0][:] = -1.0
        t3 = svc.submit_nowait(PageRankQuery("m"))
        assert np.allclose(t3.value[0], ranks_ref)
        # different parameters are a different memo entry
        svc.submit_nowait(PageRankQuery("m", damping=0.7))
        assert svc.stats()["pagerank_memo"]["entries"] == 2

    def test_per_matrix_queues_are_independent(self, coo):
        svc = make_service(coo, max_batch=2)
        svc.register_matrix("other", coo)
        t1 = svc.submit_nowait(MultiplyQuery("m", vec(1)))
        t2 = svc.submit_nowait(MultiplyQuery("other", vec(2)))
        assert not t1.done and not t2.done and svc.pending == 2
        t3 = svc.submit_nowait(MultiplyQuery("m", vec(3)))
        # m's queue filled its size budget; other's still waits
        assert t1.done and t3.done and not t2.done


class TestAsyncPath:
    def test_await_resolves_on_size_budget(self, coo):
        svc = make_service(coo, max_batch=2, max_delay_ms=None)

        async def main():
            await svc.start()
            try:
                return await asyncio.gather(
                    svc.submit(MultiplyQuery("m", vec(1))),
                    svc.submit(MultiplyQuery("m", vec(2))))
            finally:
                await svc.stop()

        y1, y2 = asyncio.run(main())
        assert np.array_equal(
            y1.to_dense(), TileSpMSpV(coo).multiply(vec(1)).to_dense())
        assert np.array_equal(
            y2.to_dense(), TileSpMSpV(coo).multiply(vec(2)).to_dense())

    def test_await_resolves_on_latency_budget(self, coo):
        # real clock: the background loop must fire the 5 ms budget
        import time
        svc = GraphQueryService(device=Device(), clock=time.monotonic,
                                max_batch=100, max_delay_ms=5.0)
        svc.register_matrix("m", coo)

        async def main():
            await svc.start()
            try:
                return await asyncio.wait_for(
                    svc.submit(MultiplyQuery("m", vec(7))), timeout=10)
            finally:
                await svc.stop()

        y = asyncio.run(main())
        assert np.array_equal(
            y.to_dense(), TileSpMSpV(coo).multiply(vec(7)).to_dense())

    def test_stop_drains_pending(self, coo):
        svc = make_service(coo, max_batch=100, max_delay_ms=None)

        async def main():
            await svc.start()
            task = asyncio.ensure_future(
                svc.submit(MultiplyQuery("m", vec(9))))
            await asyncio.sleep(0)         # let it enqueue
            assert svc.pending == 1
            await svc.stop(drain=True)
            return await task

        y = asyncio.run(main())
        assert svc.pending == 0
        assert np.array_equal(
            y.to_dense(), TileSpMSpV(coo).multiply(vec(9)).to_dense())


class TestDeadlineDispatch:
    def test_request_landing_exactly_on_deadline_dispatches(self, coo):
        clk = VirtualClock(start=1 / 3)       # awkward float origin
        svc = make_service(coo, clock=clk, max_batch=100,
                           max_delay_ms=5.0)
        t = svc.submit_nowait(MultiplyQuery("m", vec(1)))
        assert svc.pump() == 0                # budget not exhausted yet
        clk.advance(5.0 / 1e3)                # exactly on the deadline
        d = svc.next_deadline_ms()
        assert d is not None and d <= 0.0
        assert svc.pump() == 1                # must fire, not spin
        assert t.done

    def test_overdue_request_dispatches(self, coo):
        clk = VirtualClock()
        svc = make_service(coo, clock=clk, max_batch=100,
                           max_delay_ms=5.0)
        t = svc.submit_nowait(MultiplyQuery("m", vec(2)))
        clk.advance(0.007)                    # well past the budget
        assert svc.next_deadline_ms() < 0
        assert svc.pump() == 1 and t.done

    def test_deadline_and_overdue_check_agree(self, coo):
        # Regression: next_deadline_ms() and dispatch_overdue() must
        # never disagree by a float rounding step, or the async loop
        # busy-spins on a deadline the queue refuses to fire.
        for start in (0.0, 1 / 3, 0.1, 12345.6789, 2.0 ** 31):
            clk = VirtualClock(start=start)
            svc = make_service(coo, clock=clk, max_batch=100,
                               max_delay_ms=5.0)
            svc.submit_nowait(MultiplyQuery("m", vec(3)))
            clk.advance(5.0 / 1e3)
            d = svc.next_deadline_ms()
            assert d is not None and d <= 0.0, f"start={start}"
            assert svc.pump() == 1, f"would spin at start={start}"

    def test_async_loop_fires_overdue_virtual_deadline(self, coo):
        # The dispatch loop must serve a request whose deadline has
        # already passed on the virtual clock without sleeping a
        # negative timeout or spinning.
        clk = VirtualClock(start=0.125)
        svc = make_service(coo, clock=clk, max_batch=100,
                           max_delay_ms=5.0)

        async def main():
            await svc.start()
            try:
                fut = asyncio.ensure_future(
                    svc.submit(MultiplyQuery("m", vec(4))))
                await asyncio.sleep(0)        # enqueue the request
                clk.advance(5.0 / 1e3)        # lands exactly on deadline
                svc._kick()                   # wake the loop
                return await asyncio.wait_for(fut, timeout=5)
            finally:
                await svc.stop()

        y = asyncio.run(main())
        assert np.array_equal(
            y.to_dense(), TileSpMSpV(coo).multiply(vec(4)).to_dense())


class TestObservability:
    def test_multiply_requests_resolve_to_batch_events(self, coo):
        svc = make_service(coo, tracer=Tracer(), max_batch=2)
        svc.register_matrix("m2", coo)
        ta = svc.submit_nowait(MultiplyQuery("m", vec(1)))
        tb = svc.submit_nowait(MultiplyQuery("m", vec(2)))
        tc = svc.submit_nowait(MultiplyQuery("m2", vec(3)))
        td = svc.submit_nowait(MultiplyQuery("m2", vec(4)))
        ev_a = svc.events_for(ta.request_id)
        ev_c = svc.events_for(tc.request_id)
        assert ev_a and ev_c
        # batchmates share their launches; other queues' batches (with
        # the same batch id) never leak in
        assert ev_a == svc.events_for(tb.request_id)
        assert ev_c == svc.events_for(td.request_id)
        assert not set(id(e) for e in ev_a) & set(id(e) for e in ev_c)
        assert all(e.tag.startswith("mat=m;") for e in ev_a)
        assert ta.record.launch_tag == "mat=m;batch=0"

    def test_direct_requests_get_seq_window(self, coo):
        svc = make_service(coo, tracer=Tracer())
        t = svc.submit_nowait(BFSQuery("m", 0))
        evs = svc.events_for(t.request_id)
        assert evs
        assert t.record.seq_end - t.record.seq_start == len(evs)
        assert all("bfs" in e.name for e in evs)

    def test_stats_shape(self, coo):
        svc = make_service(coo, max_batch=2)
        for s in range(4):
            svc.submit_nowait(MultiplyQuery("m", vec(s)))
        svc.submit_nowait(BFSQuery("m", 1))
        stats = svc.stats()
        assert stats["requests"] == 5 and stats["completed"] == 5
        assert stats["rejected"] == 0 and stats["pending"] == 0
        assert stats["latency"]["multiply"]["count"] == 4
        assert stats["latency"]["bfs"]["count"] == 1
        assert stats["latency"]["all"]["p99_ms"] >= 0
        assert stats["queues"]["m"]["batches"] == 2
        assert stats["admission"]["admitted"] == 5
        assert "default" in stats["tenants"]

    def test_p99_is_an_observed_latency_on_small_samples(self):
        from repro.serving import RequestLog
        log = RequestLog()
        # 10 samples: 1..9 ms plus one 100 ms straggler.  Linear
        # interpolation would report p99 ≈ 91.8 ms — below the max, a
        # latency no request actually paid.
        for i, ms in enumerate([1, 2, 3, 4, 5, 6, 7, 8, 9, 100]):
            rec = log.open("default", "multiply", "m", None, float(i))
            log.complete(rec, float(i) + ms / 1e3)
        r = log.rollup()
        assert r["p99_ms"] == pytest.approx(100.0)
        assert r["p99_ms"] == pytest.approx(r["max_ms"])
        # the interpolated value the old rollup reported sat below max
        lat = log.latencies_ms()
        assert float(np.percentile(lat, 99)) < r["max_ms"]
        # the median keeps the default interpolation
        assert r["p50_ms"] == pytest.approx(5.5)

    def test_request_log_jsonl_roundtrip(self, coo, tmp_path):
        import json
        svc = make_service(coo, max_batch=1)
        svc.submit_nowait(MultiplyQuery("m", vec(1)))
        path = tmp_path / "requests.jsonl"
        svc.log.write_jsonl(path)
        rows = [json.loads(line)
                for line in path.read_text().splitlines()]
        assert rows[0]["status"] == "ok"
        assert rows[0]["latency_ms"] is not None

    def test_virtual_completion_model_accumulates_backlog(self, coo):
        clk = VirtualClock()
        svc = make_service(coo, clock=clk, max_batch=1)
        svc.submit_nowait(MultiplyQuery("m", vec(1)))
        first = svc.backlog_ms
        assert first > 0               # modeled work queued behind now
        svc.submit_nowait(MultiplyQuery("m", vec(2)))
        assert svc.backlog_ms > first  # server model is busy
        clk.advance(1.0)
        assert svc.backlog_ms == 0.0   # drained once time passes
