"""Multi-tenant plan-cache partitioning: hard isolation and pin
quotas (the satellite acceptance test: one tenant's pinning or cache
churn cannot evict another tenant's pinned plans)."""

import numpy as np
import pytest

from repro.formats import COOMatrix
from repro.runtime import matrix_token
from repro.semiring import PLUS_TIMES
from repro.serving import (GraphQueryService, MultiplyQuery,
                           TenantPlanCache, TenantQuotaError,
                           VirtualClock)

from ..conftest import random_dense

N = 64


def matrix(seed):
    return COOMatrix.from_dense(random_dense(N, N, 0.08, seed=seed))


def vec(seed, k=6):
    r = np.random.default_rng(seed)
    idx = np.sort(r.choice(N, size=k, replace=False))
    from repro.vectors import SparseVector
    return SparseVector(N, idx, 1.0 + r.random(k))


def plan_key(m, nt=16, extract_threshold=2):
    return ("tilespmspv", matrix_token(m), nt, extract_threshold,
            PLUS_TIMES, "csr")


class TestPartitioning:
    def test_partitions_are_separate_caches(self):
        tc = TenantPlanCache()
        assert tc.partition("a") is not tc.partition("b")
        assert tc.partition("a") is tc.partition("a")
        assert set(tc.tenants) == {"a", "b"}

    def test_pin_quota_enforced(self):
        tc = TenantPlanCache(pin_quota=1)
        cache = tc.partition("a")
        cache.get_or_build("k1", lambda: object())
        cache.get_or_build("k2", lambda: object())
        assert tc.pin("a", "k1") is True
        assert tc.pin("a", "k1") is True          # re-pin: free no-op
        with pytest.raises(TenantQuotaError):
            tc.pin("a", "k2")
        assert tc.unpin("a", "k1") is True
        assert tc.pin("a", "k2") is True          # quota freed

    def test_pin_absent_key_is_refused_without_charge(self):
        tc = TenantPlanCache(pin_quota=1)
        assert tc.pin("a", "ghost") is False
        assert tc.pinned("a") == 0

    def test_one_tenant_at_quota_does_not_limit_another(self):
        tc = TenantPlanCache(pin_quota=1)
        for t in ("a", "b"):
            tc.partition(t).get_or_build("k", lambda: object())
        assert tc.pin("a", "k") is True
        with pytest.raises(TenantQuotaError):
            tc.pin("a", "k2")
        assert tc.pin("b", "k") is True           # b is untouched

    def test_validation(self):
        with pytest.raises(ValueError):
            TenantPlanCache(partition_size=0)
        with pytest.raises(ValueError):
            TenantPlanCache(pin_quota=-1)

    def test_stats(self):
        tc = TenantPlanCache(partition_size=4, pin_quota=2)
        tc.partition("a").get_or_build("k", lambda: object())
        tc.pin("a", "k")
        s = tc.stats()
        assert s["a"]["size"] == 1
        assert s["a"]["pins_held"] == 1 and s["a"]["pin_quota"] == 2


class TestCrossTenantIsolation:
    def test_churn_cannot_evict_another_tenants_pinned_plan(self):
        """Tenant A thrashing its (tiny) partition never evicts tenant
        B's pinned plan — eviction pressure does not cross tenants."""
        tenants = TenantPlanCache(partition_size=1, pin_quota=1)
        svc = GraphQueryService(clock=VirtualClock(), max_batch=1,
                                tenants=tenants)
        hot = matrix(1)
        svc.register_matrix("hot", hot, tenant="B", pin=True)
        key = plan_key(hot)
        assert tenants.partition("B").is_pinned(key)

        # tenant A churns: three matrices through a 1-entry partition
        for i in range(3):
            svc.register_matrix(f"cold{i}", matrix(10 + i), tenant="A")
            svc.submit_nowait(MultiplyQuery(f"cold{i}", vec(i)),
                              tenant="A")
        assert tenants.partition("A").stats()["size"] == 1  # thrashed

        # B's plan survived, still pinned, and a fresh operator over
        # the same matrix hits it instead of rebuilding
        assert tenants.partition("B").get(key) is not None
        assert tenants.partition("B").is_pinned(key)
        hits = tenants.partition("B").stats()["hits"]
        from repro.core import TileSpMSpV
        TileSpMSpV(hot, plan_cache=tenants.partition("B"))
        assert tenants.partition("B").stats()["hits"] > hits

    def test_quota_exhaustion_is_per_tenant_in_service(self):
        tenants = TenantPlanCache(pin_quota=1)
        svc = GraphQueryService(clock=VirtualClock(), tenants=tenants)
        svc.register_matrix("a1", matrix(1), tenant="A", pin=True)
        svc.register_matrix("a2", matrix(2), tenant="A")
        with pytest.raises(TenantQuotaError):
            svc.pin_plans("a2")
        # A being at quota never blocks B
        svc.register_matrix("b1", matrix(3), tenant="B", pin=True)
        assert tenants.pinned("A") == 1 and tenants.pinned("B") == 1

    def test_tenant_plans_live_in_their_partition_only(self):
        tenants = TenantPlanCache()
        svc = GraphQueryService(clock=VirtualClock(), max_batch=1,
                                tenants=tenants)
        A = matrix(5)
        svc.register_matrix("mA", A, tenant="A")
        svc.submit_nowait(MultiplyQuery("mA", vec(1)), tenant="A")
        key = plan_key(A)
        assert tenants.partition("A").get(key) is not None
        assert tenants.partition("B").get(key) is None
