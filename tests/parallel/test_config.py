"""ParallelConfig: validation, env switches, backend resolution."""

import pytest

from repro.parallel import (BACKEND_ENV, WORKERS_ENV, ParallelConfig,
                            env_workers)
from repro.shards import DirectoryShardStore, InMemoryShardStore


class TestValidation:
    def test_defaults(self):
        cfg = ParallelConfig()
        assert cfg.workers == 1
        assert cfg.backend == "auto"
        assert cfg.prefetch_depth == 1
        assert cfg.steal_chunks == 2
        assert cfg.affinity

    @pytest.mark.parametrize("kwargs", [
        {"workers": 0},
        {"backend": "cuda"},
        {"prefetch_depth": -1},
        {"steal_chunks": 0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ParallelConfig(**kwargs)

    def test_frozen(self):
        with pytest.raises(Exception):
            ParallelConfig().workers = 4


class TestEnv:
    def test_env_workers_unset_is_one(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert env_workers() == 1

    @pytest.mark.parametrize("raw,want", [
        ("4", 4), (" 2 ", 2), ("0", 1), ("-3", 1), ("garbage", 1),
        ("", 1),
    ])
    def test_env_workers_parsing(self, monkeypatch, raw, want):
        monkeypatch.setenv(WORKERS_ENV, raw)
        assert env_workers() == want

    def test_from_env_reads_both_vars(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        monkeypatch.setenv(BACKEND_ENV, "thread")
        cfg = ParallelConfig.from_env()
        assert cfg.workers == 3 and cfg.backend == "thread"

    def test_from_env_garbage_backend_is_auto(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "2")
        monkeypatch.setenv(BACKEND_ENV, "gpu")
        assert ParallelConfig.from_env().backend == "auto"


class TestCoerce:
    def test_none_reads_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert ParallelConfig.coerce(None).workers == 5

    def test_int_is_worker_count(self):
        assert ParallelConfig.coerce(4).workers == 4

    def test_config_passes_through(self):
        cfg = ParallelConfig(workers=2)
        assert ParallelConfig.coerce(cfg) is cfg

    @pytest.mark.parametrize("bad", [True, 2.0, "4"])
    def test_rejects_other_types(self, bad):
        with pytest.raises(TypeError):
            ParallelConfig.coerce(bad)


class TestBackendResolution:
    def test_single_worker_is_always_serial(self, tmp_path):
        cfg = ParallelConfig(workers=1, backend="process")
        assert cfg.resolved_backend(
            DirectoryShardStore(tmp_path)) == "serial"

    def test_explicit_backend_wins(self, tmp_path):
        cfg = ParallelConfig(workers=4, backend="thread")
        assert cfg.resolved_backend(
            DirectoryShardStore(tmp_path)) == "thread"

    def test_auto_in_memory_is_thread(self):
        cfg = ParallelConfig(workers=4)
        assert cfg.resolved_backend(InMemoryShardStore()) == "thread"

    def test_auto_directory_prefers_process(self, tmp_path,
                                            monkeypatch):
        from repro.parallel import config as config_mod
        monkeypatch.setattr(config_mod, "_fork_available", lambda: True)
        cfg = ParallelConfig(workers=4)
        assert cfg.resolved_backend(
            DirectoryShardStore(tmp_path)) == "process"
        monkeypatch.setattr(config_mod, "_fork_available",
                            lambda: False)
        assert cfg.resolved_backend(
            DirectoryShardStore(tmp_path)) == "thread"


class TestSliceBudget:
    def test_unbudgeted_stays_unbudgeted(self):
        assert ParallelConfig(workers=4).slice_budget(None) is None

    def test_split_evenly(self):
        assert ParallelConfig(workers=4).slice_budget(1000) == 250

    def test_never_below_one(self):
        assert ParallelConfig(workers=8).slice_budget(3) == 1
