"""The cost-model work scheduler: estimates, placement, stealing."""

import numpy as np

from repro.parallel import WorkScheduler
from repro.shards import ShardedTiledMatrix

from ..conftest import random_coo


def sharded(n_shards=6, seed=3, m=96, n=96, density=0.08, nt=8):
    coo = random_coo(m, n, density, seed=seed)
    return ShardedTiledMatrix.from_coo(coo, nt=nt, n_shards=n_shards)


def all_cols(matrix):
    return np.arange(matrix.nt_cols if hasattr(matrix, "nt_cols")
                     else matrix.occupancy.shape[1] * 64,
                     dtype=np.int64)


class TestCostModel:
    def test_estimate_scales_with_active_fraction(self):
        sm = sharded()
        sched = WorkScheduler(sm, workers=2)
        full = sched.active_mask(all_cols(sm))
        empty = sched.active_mask(np.array([], dtype=np.int64))
        for sid in range(sm.n_shards):
            hi = sched.estimate(sid, full)
            lo = sched.estimate(sid, empty)
            assert lo == 1.0          # launch charge only
            assert hi >= lo
        # a fully active input prices each shard at launch + its nnz
        sid_costs = [sched.estimate(s, full) for s in range(sm.n_shards)]
        assert sid_costs == [1.0 + max(1.0, nnz)
                             for nnz in sm.shard_nnz]

    def test_active_mask_layout_matches_occupancy(self):
        # 600 columns at nt=8 -> 75 tile columns -> two bitmap words
        sm = sharded(m=96, n=600)
        sched = WorkScheduler(sm, workers=2)
        assert sm.occupancy.shape[1] == 2
        mask = sched.active_mask(np.array([0, 1, 64], dtype=np.int64))
        assert mask.dtype == np.uint64
        assert mask.shape == (sm.occupancy.shape[1],)
        assert mask[0] == np.uint64(0b11)
        assert mask[1] == np.uint64(1)


class TestPlanning:
    def test_places_every_shard_exactly_once(self):
        sm = sharded(n_shards=6)
        sched = WorkScheduler(sm, workers=3)
        executed = np.arange(sm.n_shards)
        plan = sched.plan(executed, all_cols(sm))
        placed = sorted(i.sid for i in plan.items)
        assert placed == sorted(int(s) for s in executed)
        chunk_sids = sorted(s for c in plan.chunks for s in c.sids)
        assert chunk_sids == placed

    def test_deterministic(self):
        sm = sharded(n_shards=8)
        cols = all_cols(sm)
        sids = np.arange(sm.n_shards)
        p1 = WorkScheduler(sm, workers=4).plan(sids, cols)
        p2 = WorkScheduler(sm, workers=4).plan(sids, cols)
        assert [(i.sid, i.worker) for i in p1.items] == \
            [(i.sid, i.worker) for i in p2.items]
        assert [c.sids for c in p1.chunks] == [c.sids for c in p2.chunks]

    def test_lpt_balances_loads(self):
        sm = sharded(n_shards=8)
        sched = WorkScheduler(sm, workers=4)
        plan = sched.plan(np.arange(sm.n_shards), all_cols(sm))
        loads = plan.loads
        # no worker idles while another holds two-plus shards' work
        assert max(loads) <= sum(loads)
        assert plan.imbalance >= 1.0
        assert 1.0 <= plan.predicted_speedup <= 4.0

    def test_empty_plan(self):
        sm = sharded()
        plan = WorkScheduler(sm, workers=2).plan(
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64))
        assert plan.items == [] and plan.chunks == []
        assert plan.predicted_speedup == 1.0

    def test_chunks_respect_steal_chunks(self):
        sm = sharded(n_shards=8)
        sched = WorkScheduler(sm, workers=2, steal_chunks=2)
        plan = sched.plan(np.arange(sm.n_shards), all_cols(sm))
        per_worker = {}
        for c in plan.chunks:
            per_worker.setdefault(c.worker, []).append(c)
        for chunks in per_worker.values():
            assert 1 <= len(chunks) <= 2
        # heaviest chunk dispatches first
        costs = [c.cost for c in plan.chunks]
        assert costs == sorted(costs, reverse=True)


class TestAffinity:
    def test_sticky_placement_survives_replan(self):
        sm = sharded(n_shards=8)
        sched = WorkScheduler(sm, workers=4)
        cols = all_cols(sm)
        sids = np.arange(sm.n_shards)
        first = sched.plan(sids, cols)
        hits_before = sched.affinity_hits
        second = sched.plan(sids, cols)
        assert [(i.sid, i.worker) for i in first.items] == \
            [(i.sid, i.worker) for i in second.items]
        assert sched.affinity_hits > hits_before
        assert sched.stats()["sticky_shards"] == sm.n_shards

    def test_overloaded_sticky_worker_is_stolen_from(self):
        sm = sharded(n_shards=8)
        sched = WorkScheduler(sm, workers=4)
        for sid in range(sm.n_shards):
            sched.seed_affinity(sid, 0)   # pile everything on worker 0
        plan = sched.plan(np.arange(sm.n_shards), all_cols(sm))
        assert plan.stolen > 0
        assert len({i.worker for i in plan.items}) > 1
        assert sched.stats()["stolen"] == plan.stolen

    def test_affinity_off_ignores_sticky(self):
        sm = sharded(n_shards=8)
        sched = WorkScheduler(sm, workers=4, affinity=False)
        for sid in range(sm.n_shards):
            sched.seed_affinity(sid, 0)
        plan = sched.plan(np.arange(sm.n_shards), all_cols(sm))
        assert len({i.worker for i in plan.items}) > 1
        assert plan.stolen == 0           # nothing honoured, so nothing
        assert sched.affinity_hits == 0   # counts as stolen either

    def test_seed_affinity_wraps_worker_id(self):
        sm = sharded()
        sched = WorkScheduler(sm, workers=2)
        sched.seed_affinity(0, 5)
        assert sched.sticky[0] == 1
