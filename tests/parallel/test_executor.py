"""Worker-pool executor: bit-identity, prefetch, stats, affinity."""

import numpy as np
import pytest

from repro.gpusim import Device
from repro.parallel import ParallelConfig
from repro.runtime import BatchQueue
from repro.semiring import PLUS_TIMES
from repro.shards import ShardedSpMSpV, ShardedTiledMatrix
from repro.vectors import SparseVector, random_sparse_vector

from ..conftest import random_coo

N = 80


@pytest.fixture
def coo():
    return random_coo(N, N, 0.08, seed=11)


@pytest.fixture
def vectors():
    return [random_sparse_vector(N, s, seed=20 + i)
            for i, s in enumerate((0.25, 0.05, 0.6))]


def norm_tag(tag):
    if tag is None:
        return None
    return ";".join(p for p in tag.split(";")
                    if not p.startswith(("device=", "worker=")))


def stream(dev):
    return [(r.name, norm_tag(r.tag), r.counters)
            for r in dev.timeline]


def thread_cfg(workers, **kw):
    return ParallelConfig(workers=workers, backend="thread", **kw)


class TestBitIdentity:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_thread_backend_matches_sequential(self, coo, vectors,
                                               workers):
        for x in vectors:
            y_seq = ShardedSpMSpV(coo, n_shards=4).multiply(
                x, output="dense")
            y = ShardedSpMSpV(coo, n_shards=4,
                              parallel=thread_cfg(workers)
                              ).multiply(x, output="dense")
            assert np.array_equal(y.view(np.uint8),
                                  y_seq.view(np.uint8))

    def test_serial_backend_matches_sequential(self, coo, vectors):
        cfg = ParallelConfig(workers=2, backend="serial")
        for x in vectors:
            y_seq = ShardedSpMSpV(coo, n_shards=4).multiply(
                x, output="dense")
            y = ShardedSpMSpV(coo, n_shards=4, parallel=cfg).multiply(
                x, output="dense")
            assert np.array_equal(y.view(np.uint8),
                                  y_seq.view(np.uint8))

    def test_process_backend_matches_sequential(self, coo, vectors,
                                                tmp_path):
        sm = ShardedTiledMatrix.from_coo(coo, nt=16, n_shards=4,
                                         store_dir=tmp_path / "shards")
        cfg = ParallelConfig(workers=2, backend="process")
        op = ShardedSpMSpV(ShardedTiledMatrix.open(tmp_path / "shards"),
                           parallel=cfg)
        try:
            for x in vectors:
                y_seq = ShardedSpMSpV(sm).multiply(x, output="dense")
                y = op.multiply(x, output="dense")
                assert np.array_equal(y.view(np.uint8),
                                      y_seq.view(np.uint8))
        finally:
            op._executor.close()

    def test_batch_matches_sequential_batch(self, coo, vectors):
        y_seq = ShardedSpMSpV(coo, n_shards=4).multiply_batch(
            vectors, output="dense")
        y = ShardedSpMSpV(coo, n_shards=4, parallel=thread_cfg(4)
                          ).multiply_batch(vectors, output="dense")
        assert np.array_equal(y.view(np.uint8), y_seq.view(np.uint8))

    def test_pattern_only_matches_sequential(self, coo):
        # pattern-only execution multiplies the all-ones view (the
        # reachability trick TileBFS's sharded fast path relies on)
        x = random_sparse_vector(N, 0.3, seed=30)
        xb = SparseVector(x.n, x.indices,
                          np.ones(x.indices.size))
        y_seq = ShardedSpMSpV(coo, n_shards=4,
                              pattern_only=True).multiply(
            xb, output="dense")
        y = ShardedSpMSpV(coo, n_shards=4,
                          pattern_only=True, parallel=thread_cfg(2)
                          ).multiply(xb, output="dense")
        assert np.array_equal(y.view(np.uint8), y_seq.view(np.uint8))
        assert y_seq.max() > 0


class TestLaunchStream:
    def test_stream_matches_sequential_modulo_placement(self, coo,
                                                        vectors):
        dev_seq = Device()
        ShardedSpMSpV(coo, n_shards=4, device=dev_seq).multiply(
            vectors[0], output="dense")
        dev = Device()
        ShardedSpMSpV(coo, n_shards=4, device=dev,
                      parallel=thread_cfg(4)).multiply(
            vectors[0], output="dense")
        assert stream(dev) == stream(dev_seq)

    def test_parallel_tags_carry_device_and_worker(self, coo, vectors):
        dev = Device()
        ShardedSpMSpV(coo, n_shards=4, device=dev,
                      parallel=thread_cfg(2)).multiply(
            vectors[0], output="dense")
        shard_recs = [r for r in dev.timeline
                      if r.name == "sharded_spmspv_shard"]
        assert shard_recs
        for rec in shard_recs:
            parts = rec.tag.split(";")
            assert any(p.startswith("device=") for p in parts)
            assert any(p.startswith("worker=") for p in parts)

    def test_prefetch_does_not_change_stream(self, coo, vectors):
        streams = []
        for depth in (0, 2):
            dev = Device()
            op = ShardedSpMSpV(coo, n_shards=6, device=dev,
                               parallel=thread_cfg(
                                   2, prefetch_depth=depth))
            for x in vectors:
                op.multiply(x, output="dense")
            streams.append(stream(dev))
        assert streams[0] == streams[1]


class TestStats:
    def test_engine_stats_expose_pool_counters(self, coo, vectors):
        op = ShardedSpMSpV(coo, n_shards=6,
                           parallel=thread_cfg(2, prefetch_depth=2))
        for x in vectors:
            op.multiply(x, output="dense")
        s = op.stats()
        assert s["workers"] == 2
        assert s["backend"] == "thread"
        assert s["loads"] > 0
        assert s["prefetches"] > 0
        ex = op._executor.stats()
        assert ex["chunks"] > 0
        assert ex["results"] >= ex["chunks"]

    def test_process_backend_reports_pids(self, coo, vectors,
                                          tmp_path):
        ShardedTiledMatrix.from_coo(coo, nt=16, n_shards=4,
                                    store_dir=tmp_path / "s")
        cfg = ParallelConfig(workers=2, backend="process")
        op = ShardedSpMSpV(ShardedTiledMatrix.open(tmp_path / "s"),
                           parallel=cfg)
        try:
            op.multiply(vectors[0], output="dense")
            ex = op._executor.stats()
            assert 1 <= len(ex["worker_pids"]) <= 2
            assert all(isinstance(p, int) for p in ex["worker_pids"])
        finally:
            op._executor.close()

    def test_close_is_idempotent(self, coo, vectors):
        op = ShardedSpMSpV(coo, n_shards=4, parallel=thread_cfg(2))
        op.multiply(vectors[0], output="dense")
        op._executor.close()
        op._executor.close()

    def test_last_plan_records_placement(self, coo, vectors):
        op = ShardedSpMSpV(coo, n_shards=4, parallel=thread_cfg(2))
        assert op._last_plan is None
        op.multiply(vectors[0], output="dense")
        plan = op._last_plan
        assert plan is not None
        assert plan.predicted_speedup >= 1.0
        assert {i.worker for i in plan.items} <= {0, 1}


class TestBatchQueueAffinity:
    def test_affinity_seeds_from_residency(self, coo, vectors):
        sm = ShardedTiledMatrix.from_coo(coo, nt=16, n_shards=4)
        q = BatchQueue(sm, max_batch=len(vectors),
                       parallel=thread_cfg(2))
        for x in vectors:
            q.submit(x, PLUS_TIMES)
        q.flush()
        assert q.stats()["affinity_seeded"] == 0   # pool still cold
        for x in vectors:
            q.submit(x, PLUS_TIMES)
        q.flush()
        assert q.stats()["affinity_seeded"] > 0

    def test_affinity_off_never_seeds(self, coo, vectors):
        sm = ShardedTiledMatrix.from_coo(coo, nt=16, n_shards=4)
        q = BatchQueue(sm, max_batch=1, shard_affinity=False,
                       parallel=thread_cfg(2))
        for x in vectors:
            q.submit(x, PLUS_TIMES)
        q.flush()
        assert q.stats()["affinity_seeded"] == 0

    def test_results_match_unqueued_batch(self, coo, vectors):
        sm = ShardedTiledMatrix.from_coo(coo, nt=16, n_shards=4)
        q = BatchQueue(sm, max_batch=len(vectors),
                       parallel=thread_cfg(2))
        tickets = [q.submit(x, PLUS_TIMES, output="dense")
                   for x in vectors]
        ref = ShardedSpMSpV(coo, n_shards=4).multiply_batch(
            vectors, output="dense")
        for t, want in zip(tickets, ref):
            assert np.array_equal(t.result(), want)
