"""Multi-device timelines: tag parsing, barriers, decomposition."""

import pytest

from repro.gpusim import (Device, KernelCounters, MultiDeviceTimeline,
                          device_of_tag)


def counters(n=1000):
    return KernelCounters(launches=1, coalesced_read_bytes=64 * n,
                          flops=2 * n)


class TestDeviceOfTag:
    @pytest.mark.parametrize("tag,want", [
        (None, None),
        ("", None),
        ("shard=3", None),
        ("device=2", 2),
        ("shard=3;device=1;worker=0", 1),
        ("bfs;shard=0;device=0;worker=0", 0),
        ("device=nope", None),
    ])
    def test_parse(self, tag, want):
        assert device_of_tag(tag) == want


class TestClocks:
    def test_rejects_zero_devices(self):
        with pytest.raises(ValueError):
            MultiDeviceTimeline(0)

    def test_per_device_launch_advances_only_its_clock(self):
        mt = MultiDeviceTimeline(2)
        mt.submit("k", counters(), device=0, tag="device=0")
        assert mt.clocks[0] > 0.0
        assert mt.clocks[1] == 0.0
        assert mt.critical_path_ms == mt.clocks[0]

    def test_barrier_starts_at_max_and_advances_all(self):
        mt = MultiDeviceTimeline(2)
        mt.submit("a", counters(5000), device=0)
        mt.submit("b", counters(100), device=1)
        lagging = min(mt.clocks)
        leading = max(mt.clocks)
        start = mt.submit("combine", counters(50), device=None)
        assert start == pytest.approx(leading)
        assert start >= lagging
        assert mt.clocks[0] == mt.clocks[1] > leading

    def test_grows_to_named_device(self):
        mt = MultiDeviceTimeline(1)
        mt.submit("k", counters(), device=3)
        assert mt.n_devices == 4

    def test_sum_of_work_counts_everything(self):
        mt = MultiDeviceTimeline(2)
        t0 = mt.submit("a", counters(), device=0)
        assert t0 == 0.0
        mt.submit("b", counters(), device=1)
        mt.submit("c", counters(), device=None)
        total = sum(rec.ms for rec, _, _ in mt.schedule)
        assert mt.sum_of_work_ms == pytest.approx(total)
        assert mt.critical_path_ms <= mt.sum_of_work_ms

    def test_modeled_speedup_bounds(self):
        mt = MultiDeviceTimeline(4)
        assert mt.modeled_speedup == 1.0     # empty timeline
        for d in range(4):
            mt.submit("k", counters(), device=d)
        # perfectly balanced four-way split
        assert mt.modeled_speedup == pytest.approx(4.0)
        mt.submit("combine", counters(), device=None)
        assert 1.0 < mt.modeled_speedup < 4.0


class TestFromDevice:
    def _serial(self):
        dev = Device()
        dev.submit("sched", counters(10))              # barrier
        dev.submit("s0", counters(4000), tag="shard=0;device=0;worker=0")
        dev.submit("s1", counters(3000), tag="shard=1;device=1;worker=1")
        dev.submit("s2", counters(2000), tag="shard=2;device=0;worker=0")
        dev.submit("combine", counters(20))            # barrier
        return dev

    def test_partitions_by_tag(self):
        dev = self._serial()
        mt = MultiDeviceTimeline.from_device(dev)
        assert mt.n_devices == 2
        assert [r.name for r in mt.device_records(1)] == ["s1"]
        # barriers live on device 0, in source order
        names0 = [r.name for r in mt.device_records(0)]
        assert names0 == ["sched", "s0", "s2", "combine"]

    def test_explicit_device_count_pads_idle_devices(self):
        mt = MultiDeviceTimeline.from_device(self._serial(), n_devices=4)
        assert mt.n_devices == 4
        assert mt.per_device_ms()[3] == 0.0

    def test_untagged_timeline_degenerates_to_serial(self):
        dev = Device()
        dev.submit("a", counters())
        dev.submit("b", counters())
        mt = MultiDeviceTimeline.from_device(dev)
        assert mt.n_devices == 1
        assert mt.critical_path_ms == pytest.approx(mt.sum_of_work_ms)
        assert mt.modeled_speedup == pytest.approx(1.0)

    def test_preserves_pricing(self):
        dev = self._serial()
        mt = MultiDeviceTimeline.from_device(dev)
        assert mt.sum_of_work_ms == pytest.approx(dev.elapsed_ms)
        assert mt.critical_path_ms < dev.elapsed_ms

    def test_report_keys(self):
        rep = MultiDeviceTimeline.from_device(self._serial()).report()
        assert rep["n_devices"] == 2
        assert rep["launches"] == 5
        assert rep["critical_path_ms"] > 0
        assert len(rep["per_device_ms"]) == 2


class TestDecomposes:
    def test_exact_partition_passes(self):
        dev = Device()
        dev.submit("a", counters(), tag="device=0")
        dev.submit("b", counters(), tag="device=1")
        dev.submit("c", counters())
        mt = MultiDeviceTimeline.from_device(dev)
        assert mt.decomposes(dev) is None

    def test_detects_missing_record(self):
        dev = Device()
        dev.submit("a", counters(), tag="device=0")
        mt = MultiDeviceTimeline.from_device(dev)
        dev.submit("b", counters(), tag="device=0")
        err = mt.decomposes(dev)
        assert err is not None and "1 records" in err

    def test_detects_mismatched_record(self):
        dev = Device()
        dev.submit("a", counters(), tag="device=0")
        mt = MultiDeviceTimeline.from_device(dev)
        other = Device()
        other.submit("z", counters(), tag="device=0")
        err = mt.decomposes(other)
        assert err is not None and "differs" in err
