"""Unit tests for the CSR format."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.formats import COOMatrix, CSRMatrix
from repro.formats.csr import compress_indptr, expand_indptr

from ..conftest import random_dense


class TestIndptrHelpers:
    def test_compress_expand_roundtrip(self):
        major = np.array([0, 0, 2, 2, 2, 4], dtype=np.int64)
        indptr = compress_indptr(major, 5)
        assert indptr.tolist() == [0, 2, 2, 5, 5, 6]
        assert np.array_equal(expand_indptr(indptr), major)

    def test_compress_empty(self):
        indptr = compress_indptr(np.zeros(0, dtype=np.int64), 3)
        assert indptr.tolist() == [0, 0, 0, 0]


class TestConstruction:
    def test_from_coo_roundtrip(self):
        d = random_dense(11, 17, 0.3, seed=2)
        csr = CSRMatrix.from_coo(COOMatrix.from_dense(d))
        assert np.allclose(csr.to_dense(), d)

    def test_from_dense(self):
        d = random_dense(8, 8, 0.4, seed=3)
        assert np.allclose(CSRMatrix.from_dense(d).to_dense(), d)

    def test_duplicates_summed_via_coo(self):
        coo = COOMatrix((2, 2), np.array([0, 0]), np.array([1, 1]),
                        np.array([1.0, 2.0]))
        csr = CSRMatrix.from_coo(coo)
        assert csr.nnz == 1 and csr.data[0] == 3.0

    def test_indices_sorted_within_rows(self):
        d = random_dense(30, 30, 0.2, seed=4)
        csr = CSRMatrix.from_dense(d)
        for i in range(30):
            idx, _ = csr.row_slice(i)
            assert np.all(np.diff(idx) > 0)

    def test_empty(self):
        csr = CSRMatrix.empty((3, 4))
        assert csr.nnz == 0
        assert csr.matvec(np.ones(4)).tolist() == [0.0, 0.0, 0.0]


class TestValidation:
    def test_rejects_bad_indptr_length(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), np.array([0, 0]), np.zeros(0, dtype=np.int64))

    def test_rejects_indptr_not_starting_at_zero(self):
        with pytest.raises(FormatError):
            CSRMatrix((1, 2), np.array([1, 1]), np.zeros(0, dtype=np.int64))

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), np.array([0, 2, 1]), np.array([0, 1, 0]))

    def test_rejects_indptr_nnz_mismatch(self):
        with pytest.raises(FormatError):
            CSRMatrix((1, 2), np.array([0, 2]), np.array([0]))

    def test_rejects_column_out_of_range(self):
        with pytest.raises(FormatError):
            CSRMatrix((1, 2), np.array([0, 1]), np.array([2]))

    def test_rejects_data_length_mismatch(self):
        with pytest.raises(FormatError):
            CSRMatrix((1, 2), np.array([0, 1]), np.array([0]),
                      np.array([1.0, 2.0]))


class TestAccessors:
    def test_row_degrees(self):
        d = np.array([[1.0, 2.0], [0.0, 0.0], [3.0, 0.0]])
        csr = CSRMatrix.from_dense(d)
        assert csr.row_degrees().tolist() == [2, 0, 1]

    def test_row_of_entry(self):
        d = np.array([[1.0, 2.0], [0.0, 0.0], [3.0, 0.0]])
        csr = CSRMatrix.from_dense(d)
        assert csr.row_of_entry().tolist() == [0, 0, 2]

    def test_row_slice_views(self):
        d = random_dense(10, 10, 0.3, seed=5)
        csr = CSRMatrix.from_dense(d)
        idx, vals = csr.row_slice(3)
        assert np.allclose(d[3, idx], vals)

    def test_select_rows(self):
        d = random_dense(12, 7, 0.4, seed=6)
        csr = CSRMatrix.from_dense(d)
        sub = csr.select_rows(np.array([2, 5, 5, 0]))
        assert np.allclose(sub.to_dense(), d[[2, 5, 5, 0]])

    def test_select_rows_out_of_range(self):
        csr = CSRMatrix.empty((3, 3))
        with pytest.raises(ShapeError):
            csr.select_rows(np.array([4]))


class TestOps:
    def test_matvec_matches_dense(self):
        d = random_dense(23, 19, 0.2, seed=7)
        x = np.random.default_rng(8).random(19)
        assert np.allclose(CSRMatrix.from_dense(d).matvec(x), d @ x)

    def test_matvec_empty_rows(self):
        d = np.zeros((4, 3))
        d[1, 2] = 5.0
        csr = CSRMatrix.from_dense(d)
        y = csr.matvec(np.array([1.0, 1.0, 2.0]))
        assert y.tolist() == [0.0, 10.0, 0.0, 0.0]

    def test_matvec_shape_error(self):
        with pytest.raises(ShapeError):
            CSRMatrix.empty((2, 3)).matvec(np.zeros(2))

    def test_transpose_is_csc(self):
        from repro.formats import CSCMatrix

        d = random_dense(5, 9, 0.4, seed=9)
        t = CSRMatrix.from_dense(d).transpose()
        assert isinstance(t, CSCMatrix)
        assert np.allclose(t.to_dense(), d.T)

    def test_to_coo_roundtrip(self):
        d = random_dense(14, 6, 0.3, seed=10)
        csr = CSRMatrix.from_dense(d)
        assert np.allclose(csr.to_coo().to_dense(), d)
