"""Unit tests for the COO format."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.formats import COOMatrix

from ..conftest import random_dense


class TestConstruction:
    def test_from_dense_roundtrip(self):
        d = random_dense(9, 13, 0.3, seed=1)
        coo = COOMatrix.from_dense(d)
        assert np.allclose(coo.to_dense(), d)

    def test_from_dense_rejects_3d(self):
        with pytest.raises(ShapeError):
            COOMatrix.from_dense(np.zeros((2, 2, 2)))

    def test_pattern_defaults_to_ones(self):
        coo = COOMatrix((3, 3), np.array([0, 2]), np.array([1, 2]))
        assert coo.val.tolist() == [1.0, 1.0]

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(FormatError):
            COOMatrix((3, 3), np.array([0]), np.array([1, 2]))

    def test_rejects_value_length_mismatch(self):
        with pytest.raises(FormatError):
            COOMatrix((3, 3), np.array([0]), np.array([1]),
                      np.array([1.0, 2.0]))

    def test_rejects_out_of_range_row(self):
        with pytest.raises(FormatError):
            COOMatrix((3, 3), np.array([3]), np.array([0]))

    def test_rejects_negative_col(self):
        with pytest.raises(FormatError):
            COOMatrix((3, 3), np.array([0]), np.array([-1]))

    def test_rejects_negative_shape(self):
        with pytest.raises(ShapeError):
            COOMatrix((-1, 3), np.zeros(0, dtype=np.int64),
                      np.zeros(0, dtype=np.int64))

    def test_empty(self):
        coo = COOMatrix.empty((4, 5))
        assert coo.nnz == 0
        assert coo.to_dense().shape == (4, 5)

    def test_zero_by_zero(self):
        coo = COOMatrix.empty((0, 0))
        assert coo.nnz == 0 and coo.density == 0.0


class TestCanonicalization:
    def test_sum_duplicates(self):
        coo = COOMatrix((2, 2), np.array([0, 0, 1]), np.array([1, 1, 0]),
                        np.array([2.0, 3.0, 4.0]))
        out = coo.sum_duplicates()
        assert out.nnz == 2
        assert out.to_dense()[0, 1] == 5.0

    def test_sort_rowmajor(self):
        coo = COOMatrix((3, 3), np.array([2, 0, 1]), np.array([0, 2, 1]),
                        np.array([1.0, 2.0, 3.0]))
        out = coo.sort_rowmajor()
        assert out.row.tolist() == [0, 1, 2]

    def test_canonicalize_idempotent(self):
        d = random_dense(20, 20, 0.2, seed=3)
        coo = COOMatrix.from_dense(d).canonicalize()
        again = coo.canonicalize()
        assert np.array_equal(coo.row, again.row)
        assert np.array_equal(coo.col, again.col)
        assert np.allclose(coo.val, again.val)

    def test_drop_zeros(self):
        coo = COOMatrix((2, 2), np.array([0, 1]), np.array([0, 1]),
                        np.array([0.0, 2.0]))
        assert coo.drop_zeros().nnz == 1

    def test_drop_zeros_with_tolerance(self):
        coo = COOMatrix((2, 2), np.array([0, 1]), np.array([0, 1]),
                        np.array([1e-12, 2.0]))
        assert coo.drop_zeros(tol=1e-9).nnz == 1


class TestOps:
    def test_matvec_matches_dense(self):
        d = random_dense(15, 11, 0.25, seed=4)
        x = np.random.default_rng(5).random(11)
        assert np.allclose(COOMatrix.from_dense(d).matvec(x), d @ x)

    def test_matvec_shape_error(self):
        coo = COOMatrix.empty((3, 4))
        with pytest.raises(ShapeError):
            coo.matvec(np.zeros(5))

    def test_transpose(self):
        d = random_dense(6, 9, 0.3, seed=6)
        coo = COOMatrix.from_dense(d)
        assert np.allclose(coo.transpose().to_dense(), d.T)

    def test_symmetrize_makes_symmetric(self):
        coo = COOMatrix((4, 4), np.array([0, 1]), np.array([1, 3]),
                        np.array([2.0, 5.0]))
        s = coo.symmetrize().to_dense()
        assert np.allclose(s, s.T)
        assert s[1, 0] == 2.0 and s[3, 1] == 5.0

    def test_symmetrize_requires_square(self):
        with pytest.raises(ShapeError):
            COOMatrix.empty((2, 3)).symmetrize()

    def test_without_diagonal(self):
        coo = COOMatrix((3, 3), np.array([0, 1, 2]), np.array([0, 2, 2]),
                        np.array([1.0, 1.0, 1.0]))
        out = coo.without_diagonal()
        assert out.nnz == 1
        assert out.row.tolist() == [1]

    def test_density(self):
        coo = COOMatrix((4, 5), np.array([0]), np.array([0]))
        assert coo.density == pytest.approx(1 / 20)

    def test_validate_passes_on_good_matrix(self, small_coo):
        small_coo.validate()
