"""Tests for the matrix arithmetic helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.formats import (COOMatrix, col_degrees, diagonal, matrix_add,
                           row_degrees, scale_columns, scale_rows,
                           with_diagonal)

from ..conftest import random_dense


def mats():
    return st.tuples(st.integers(1, 40), st.integers(1, 40),
                     st.integers(0, 10**6))


class TestDiagonal:
    @given(mats())
    @settings(max_examples=30, deadline=None)
    def test_matches_numpy(self, p):
        m, n, seed = p
        d = random_dense(m, n, 0.3, seed=seed)
        assert np.allclose(diagonal(COOMatrix.from_dense(d)),
                           np.diag(d))

    def test_duplicates_summed(self):
        coo = COOMatrix((2, 2), np.array([0, 0]), np.array([0, 0]),
                        np.array([1.0, 2.0]))
        assert diagonal(coo)[0] == 3.0

    def test_empty(self):
        assert len(diagonal(COOMatrix.empty((3, 5)))) == 3


class TestWithDiagonal:
    def test_replaces(self):
        d = random_dense(8, 8, 0.4, seed=1)
        coo = COOMatrix.from_dense(d)
        newd = np.arange(1.0, 9.0)
        out = with_diagonal(coo, newd).to_dense()
        assert np.allclose(np.diag(out), newd)
        off = ~np.eye(8, dtype=bool)
        assert np.allclose(out[off], d[off])

    def test_zero_removes_entry(self):
        coo = COOMatrix.from_dense(np.eye(3))
        out = with_diagonal(coo, np.array([1.0, 0.0, 1.0]))
        assert out.nnz == 2

    def test_shape_error(self):
        with pytest.raises(ShapeError):
            with_diagonal(COOMatrix.empty((3, 3)), np.zeros(4))


class TestScaling:
    @given(mats())
    @settings(max_examples=30, deadline=None)
    def test_row_scaling(self, p):
        m, n, seed = p
        d = random_dense(m, n, 0.3, seed=seed)
        s = np.random.default_rng(seed).random(m) + 0.5
        out = scale_rows(COOMatrix.from_dense(d), s)
        assert np.allclose(out.to_dense(), np.diag(s) @ d)

    @given(mats())
    @settings(max_examples=30, deadline=None)
    def test_col_scaling(self, p):
        m, n, seed = p
        d = random_dense(m, n, 0.3, seed=seed)
        s = np.random.default_rng(seed + 1).random(n) + 0.5
        out = scale_columns(COOMatrix.from_dense(d), s)
        assert np.allclose(out.to_dense(), d @ np.diag(s))

    def test_shape_errors(self):
        coo = COOMatrix.empty((3, 4))
        with pytest.raises(ShapeError):
            scale_rows(coo, np.zeros(4))
        with pytest.raises(ShapeError):
            scale_columns(coo, np.zeros(3))


class TestMatrixAdd:
    @given(mats(), st.floats(-3, 3), st.floats(-3, 3))
    @settings(max_examples=30, deadline=None)
    def test_matches_dense(self, p, alpha, beta):
        m, n, seed = p
        a = random_dense(m, n, 0.25, seed=seed)
        b = random_dense(m, n, 0.25, seed=seed + 1)
        out = matrix_add(COOMatrix.from_dense(a),
                         COOMatrix.from_dense(b), alpha, beta)
        assert np.allclose(out.to_dense(), alpha * a + beta * b)

    def test_cancellation_dropped(self):
        a = COOMatrix.from_dense(np.eye(3))
        out = matrix_add(a, a, 1.0, -1.0)
        assert out.nnz == 0

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            matrix_add(COOMatrix.empty((2, 3)), COOMatrix.empty((3, 2)))


class TestDegrees:
    def test_row_and_col(self):
        d = np.array([[1.0, 2.0, 0.0], [0.0, 3.0, 0.0]])
        coo = COOMatrix.from_dense(d)
        assert row_degrees(coo).tolist() == [2, 1]
        assert col_degrees(coo).tolist() == [1, 2, 0]
