"""Matrix Market I/O tests, including malformed-file rejection."""

import io

import numpy as np
import pytest

from repro.errors import IOFormatError
from repro.formats import (COOMatrix, read_matrix_market,
                           write_matrix_market)

from ..conftest import random_dense


def roundtrip(coo, field="real"):
    buf = io.StringIO()
    write_matrix_market(coo, buf, field=field)
    buf.seek(0)
    return read_matrix_market(buf)


class TestRoundTrip:
    def test_real_roundtrip(self):
        d = random_dense(9, 13, 0.3, seed=1)
        coo = COOMatrix.from_dense(d)
        assert np.allclose(roundtrip(coo).to_dense(), d)

    def test_pattern_roundtrip(self):
        d = (random_dense(6, 6, 0.4, seed=2) != 0).astype(float)
        coo = COOMatrix.from_dense(d)
        back = roundtrip(coo, field="pattern")
        assert np.array_equal(back.to_dense() != 0, d != 0)

    def test_empty_matrix(self):
        back = roundtrip(COOMatrix.empty((4, 7)))
        assert back.shape == (4, 7) and back.nnz == 0

    def test_write_to_path(self, tmp_path):
        d = random_dense(5, 5, 0.4, seed=3)
        p = tmp_path / "m.mtx"
        write_matrix_market(COOMatrix.from_dense(d), p)
        assert np.allclose(read_matrix_market(p).to_dense(), d)

    def test_write_rejects_unknown_field(self):
        with pytest.raises(IOFormatError):
            write_matrix_market(COOMatrix.empty((1, 1)), io.StringIO(),
                                field="complex")


class TestParsing:
    def test_symmetric_expansion(self):
        text = ("%%MatrixMarket matrix coordinate real symmetric\n"
                "3 3 2\n"
                "2 1 5.0\n"
                "3 3 7.0\n")
        m = read_matrix_market(io.StringIO(text)).to_dense()
        assert m[1, 0] == 5.0 and m[0, 1] == 5.0 and m[2, 2] == 7.0

    def test_skew_symmetric_expansion(self):
        text = ("%%MatrixMarket matrix coordinate real skew-symmetric\n"
                "2 2 1\n"
                "2 1 4.0\n")
        m = read_matrix_market(io.StringIO(text)).to_dense()
        assert m[1, 0] == 4.0 and m[0, 1] == -4.0

    def test_integer_field(self):
        text = ("%%MatrixMarket matrix coordinate integer general\n"
                "2 2 1\n"
                "1 2 42\n")
        m = read_matrix_market(io.StringIO(text))
        assert m.to_dense()[0, 1] == 42.0

    def test_integer_values_above_2_53_exact(self):
        # 2^53 + 1 is not representable in float64; a float round-trip
        # would silently land on 2^53
        big = (1 << 53) + 1
        text = ("%%MatrixMarket matrix coordinate integer general\n"
                f"2 2 2\n"
                f"1 1 {big}\n"
                f"2 2 {-big}\n")
        m = read_matrix_market(io.StringIO(text))
        assert np.issubdtype(m.dtype, np.integer)
        assert m.val.tolist() == [big, -big]

    def test_integer_roundtrip_above_2_53(self):
        big = (1 << 53) + 1
        coo = COOMatrix((3, 3), np.array([0, 2]), np.array([1, 2]),
                        np.array([big, big + 2], dtype=np.int64))
        back = roundtrip(coo, field="integer")
        assert back.val.tolist() == [big, big + 2]

    def test_integer_write_rejects_float_values(self):
        coo = COOMatrix((2, 2), np.array([0]), np.array([1]),
                        np.array([1.5]))
        with pytest.raises(IOFormatError):
            write_matrix_market(coo, io.StringIO(), field="integer")

    def test_skew_symmetric_rejects_explicit_diagonal(self):
        # the spec stores only the strict lower triangle; a diagonal
        # entry in a skew-symmetric file is malformed
        text = ("%%MatrixMarket matrix coordinate real skew-symmetric\n"
                "2 2 2\n"
                "2 1 4.0\n"
                "1 1 0.0\n")
        with pytest.raises(IOFormatError, match="diagonal"):
            read_matrix_market(io.StringIO(text))

    def test_pattern_field(self):
        text = ("%%MatrixMarket matrix coordinate pattern general\n"
                "2 2 2\n"
                "1 1\n2 2\n")
        m = read_matrix_market(io.StringIO(text))
        assert m.to_dense().tolist() == [[1.0, 0.0], [0.0, 1.0]]

    def test_comments_before_size_line(self):
        text = ("%%MatrixMarket matrix coordinate real general\n"
                "% a comment\n%another\n\n"
                "1 1 1\n"
                "1 1 9.0\n")
        assert read_matrix_market(io.StringIO(text)).to_dense()[0, 0] == 9.0


class TestMalformed:
    @pytest.mark.parametrize("text,why", [
        ("not a header\n1 1 0\n", "missing header"),
        ("%%MatrixMarket matrix array real general\n1 1\n1.0\n",
         "array format unsupported"),
        ("%%MatrixMarket vector coordinate real general\n1 1 0\n",
         "non-matrix object"),
        ("%%MatrixMarket matrix coordinate complex general\n1 1 1\n"
         "1 1 1.0 0.0\n", "complex unsupported"),
        ("%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n",
         "hermitian unsupported"),
        ("%%MatrixMarket matrix coordinate real general\n", "no size line"),
        ("%%MatrixMarket matrix coordinate real general\nfoo bar baz\n",
         "bad size line"),
        ("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
         "entry count mismatch"),
        ("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 xyz\n",
         "non-numeric value"),
        ("%%MatrixMarket matrix coordinate real general\n1 1 1\n5 1 1.0\n",
         "index out of range"),
        ("%%MatrixMarket matrix\n1 1 0\n", "short header"),
    ])
    def test_rejects(self, text, why):
        with pytest.raises(IOFormatError):
            read_matrix_market(io.StringIO(text))
