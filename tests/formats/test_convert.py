"""Conversion round-trips, including property-based checks."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import (COOMatrix, CSCMatrix, CSRMatrix,
                           as_sparse, from_scipy, to_bsr, to_coo, to_csc,
                           to_csr, to_scipy_csr)

from ..conftest import random_dense


def dense_matrices(max_dim=24):
    """Strategy: small dense float matrices with controlled sparsity."""
    return st.tuples(
        st.integers(1, max_dim), st.integers(1, max_dim), st.integers(0, 10**6)
    ).map(lambda t: random_dense(t[0], t[1],
                                 density=0.25, seed=t[2]))


class TestRoundTrips:
    @given(dense_matrices())
    @settings(max_examples=40, deadline=None)
    def test_coo_csr_csc_chain(self, d):
        coo = COOMatrix.from_dense(d)
        assert np.allclose(to_csr(coo).to_dense(), d)
        assert np.allclose(to_csc(coo).to_dense(), d)
        assert np.allclose(to_csc(to_csr(coo)).to_dense(), d)
        assert np.allclose(to_csr(to_csc(coo)).to_dense(), d)

    @given(dense_matrices(), st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=30, deadline=None)
    def test_bsr_roundtrip(self, d, b):
        assert np.allclose(to_bsr(d, b).to_dense(), d)

    @given(dense_matrices())
    @settings(max_examples=30, deadline=None)
    def test_matvec_agrees_across_formats(self, d):
        x = np.random.default_rng(0).random(d.shape[1])
        ref = d @ x
        for m in (to_coo(d), to_csr(d), to_csc(d), to_bsr(d, 4)):
            assert np.allclose(m.matvec(x), ref)

    def test_canonical_entry_order_stable(self):
        d = random_dense(15, 15, 0.3, seed=1)
        a = to_csr(to_csc(to_coo(d)))
        b = to_csr(d)
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)
        assert np.allclose(a.data, b.data)


class TestAsSparse:
    def test_dense_input(self):
        m = as_sparse(np.eye(3))
        assert isinstance(m, COOMatrix)
        assert m.nnz == 3

    def test_passthrough(self, small_coo):
        assert as_sparse(small_coo) is small_coo

    def test_to_csr_passthrough(self):
        csr = CSRMatrix.from_dense(np.eye(3))
        assert to_csr(csr) is csr

    def test_to_csc_passthrough(self):
        csc = CSCMatrix.from_dense(np.eye(3))
        assert to_csc(csc) is csc


class TestScipyInterop:
    def test_from_scipy(self):
        import scipy.sparse as sp

        d = random_dense(9, 7, 0.3, seed=2)
        ours = from_scipy(sp.csr_matrix(d))
        assert np.allclose(ours.to_dense(), d)

    def test_to_scipy(self):
        d = random_dense(9, 7, 0.3, seed=3)
        sp_m = to_scipy_csr(COOMatrix.from_dense(d))
        assert np.allclose(sp_m.toarray(), d)

    def test_roundtrip_through_scipy(self):
        d = random_dense(11, 11, 0.2, seed=4)
        assert np.allclose(from_scipy(to_scipy_csr(to_coo(d))).to_dense(), d)
