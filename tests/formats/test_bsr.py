"""Unit tests for the BSR (dense-block) format."""

import numpy as np
import pytest

from repro.errors import ConversionError, FormatError, ShapeError
from repro.formats import BSRMatrix, COOMatrix

from ..conftest import random_dense


class TestConstruction:
    @pytest.mark.parametrize("b", [1, 2, 4, 8])
    def test_roundtrip_various_blocksizes(self, b):
        d = random_dense(19, 23, 0.2, seed=b)   # deliberately non-multiples
        bsr = BSRMatrix.from_dense(d, b)
        assert np.allclose(bsr.to_dense(), d)

    def test_rejects_nonpositive_blocksize(self):
        with pytest.raises(ConversionError):
            BSRMatrix.from_dense(np.eye(4), 0)

    def test_padding_geometry(self):
        bsr = BSRMatrix.from_dense(np.eye(10), 4)
        assert bsr.n_block_rows == 3 and bsr.n_block_cols == 3

    def test_blocks_are_dense(self):
        d = np.zeros((4, 4))
        d[0, 0] = 1.0
        bsr = BSRMatrix.from_dense(d, 4)
        assert bsr.n_blocks == 1
        assert bsr.blocks.shape == (1, 4, 4)
        # the stored nnz counts zeros inside the block
        assert bsr.nnz == 16
        assert bsr.true_nnz == 1

    def test_fill_ratio(self):
        d = np.zeros((4, 4))
        d[0, 0] = d[1, 1] = 1.0
        bsr = BSRMatrix.from_dense(d, 4)
        assert bsr.fill_ratio() == pytest.approx(2 / 16)

    def test_fill_ratio_empty(self):
        bsr = BSRMatrix.from_coo(COOMatrix.empty((4, 4)), 2)
        assert bsr.fill_ratio() == 0.0


class TestValidation:
    def test_rejects_bad_blocks_shape(self):
        with pytest.raises(FormatError):
            BSRMatrix((4, 4), 2, np.array([0, 1, 1]), np.array([0]),
                      np.zeros((1, 2, 3)))

    def test_rejects_block_col_out_of_range(self):
        with pytest.raises(FormatError):
            BSRMatrix((4, 4), 2, np.array([0, 1, 1]), np.array([2]),
                      np.zeros((1, 2, 2)))

    def test_rejects_bad_indptr(self):
        with pytest.raises(FormatError):
            BSRMatrix((4, 4), 2, np.array([1, 1, 1]), np.zeros(0, np.int64),
                      np.zeros((0, 2, 2)))


class TestMatvec:
    @pytest.mark.parametrize("b", [2, 3, 8])
    def test_matches_dense(self, b):
        d = random_dense(17, 14, 0.3, seed=10 + b)
        x = np.random.default_rng(3).random(14)
        assert np.allclose(BSRMatrix.from_dense(d, b).matvec(x), d @ x)

    def test_matvec_shape_error(self):
        bsr = BSRMatrix.from_dense(np.eye(4), 2)
        with pytest.raises(ShapeError):
            bsr.matvec(np.zeros(5))

    def test_matvec_empty_matrix(self):
        bsr = BSRMatrix.from_coo(COOMatrix.empty((6, 6)), 2)
        assert np.allclose(bsr.matvec(np.ones(6)), 0.0)

    def test_matvec_padded_tail(self):
        """Values in the padded region must not leak into the result."""
        d = random_dense(5, 5, 0.8, seed=20)
        x = np.random.default_rng(4).random(5)
        bsr = BSRMatrix.from_dense(d, 4)   # pads to 8x8
        assert np.allclose(bsr.matvec(x), d @ x)
