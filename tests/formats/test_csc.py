"""Unit tests for the CSC format."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.formats import COOMatrix, CSCMatrix

from ..conftest import random_dense


class TestConstruction:
    def test_from_coo_roundtrip(self):
        d = random_dense(13, 9, 0.3, seed=2)
        csc = CSCMatrix.from_coo(COOMatrix.from_dense(d))
        assert np.allclose(csc.to_dense(), d)

    def test_indices_sorted_within_cols(self):
        d = random_dense(25, 25, 0.2, seed=3)
        csc = CSCMatrix.from_dense(d)
        for j in range(25):
            idx, _ = csc.col_slice(j)
            assert np.all(np.diff(idx) > 0)

    def test_empty(self):
        csc = CSCMatrix.empty((3, 4))
        assert csc.nnz == 0


class TestValidation:
    def test_rejects_bad_indptr_length(self):
        with pytest.raises(FormatError):
            CSCMatrix((2, 2), np.array([0, 0]), np.zeros(0, dtype=np.int64))

    def test_rejects_row_out_of_range(self):
        with pytest.raises(FormatError):
            CSCMatrix((2, 1), np.array([0, 1]), np.array([2]))

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(FormatError):
            CSCMatrix((2, 2), np.array([0, 2, 1]), np.array([0, 1, 0]))


class TestGatherColumns:
    def test_gather_matches_slices(self):
        d = random_dense(10, 12, 0.35, seed=4)
        csc = CSCMatrix.from_dense(d)
        cols = np.array([3, 0, 7])
        rows, vals, src = csc.gather_columns(cols)
        off = 0
        for k, j in enumerate(cols):
            idx, v = csc.col_slice(j)
            seg = slice(off, off + len(idx))
            assert np.array_equal(rows[seg], idx)
            assert np.allclose(vals[seg], v)
            assert np.all(src[seg] == k)
            off += len(idx)
        assert off == len(rows)

    def test_gather_empty_selection(self):
        csc = CSCMatrix.from_dense(random_dense(5, 5, 0.5, seed=5))
        rows, vals, src = csc.gather_columns(np.zeros(0, dtype=np.int64))
        assert len(rows) == len(vals) == len(src) == 0

    def test_gather_out_of_range(self):
        csc = CSCMatrix.empty((3, 3))
        with pytest.raises(ShapeError):
            csc.gather_columns(np.array([3]))

    def test_gather_empty_columns(self):
        d = np.zeros((4, 4))
        d[0, 1] = 1.0
        csc = CSCMatrix.from_dense(d)
        rows, vals, src = csc.gather_columns(np.array([0, 1, 2]))
        assert rows.tolist() == [0]
        assert src.tolist() == [1]


class TestOps:
    def test_matvec_matches_dense(self):
        d = random_dense(21, 17, 0.25, seed=6)
        x = np.random.default_rng(7).random(17)
        assert np.allclose(CSCMatrix.from_dense(d).matvec(x), d @ x)

    def test_matvec_shape_error(self):
        with pytest.raises(ShapeError):
            CSCMatrix.empty((2, 3)).matvec(np.zeros(4))

    def test_transpose_is_csr(self):
        from repro.formats import CSRMatrix

        d = random_dense(5, 9, 0.4, seed=8)
        t = CSCMatrix.from_dense(d).transpose()
        assert isinstance(t, CSRMatrix)
        assert np.allclose(t.to_dense(), d.T)

    def test_col_degrees(self):
        d = np.array([[1.0, 0.0], [2.0, 0.0]])
        assert CSCMatrix.from_dense(d).col_degrees().tolist() == [2, 0]

    def test_col_of_entry(self):
        d = np.array([[1.0, 3.0], [2.0, 0.0]])
        assert CSCMatrix.from_dense(d).col_of_entry().tolist() == [0, 0, 1]
