"""Tests for Gustavson SpGEMM and the SpMSpV-via-SpGEMM baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import SpMSpVViaSpGEMM
from repro.errors import ShapeError
from repro.formats import COOMatrix, CSRMatrix, spgemm, spgemm_flops, to_csr
from repro.gpusim import Device, RTX3090
from repro.vectors import SparseVector, random_sparse_vector

from ..conftest import random_dense


def csr_of(d):
    return to_csr(COOMatrix.from_dense(d))


class TestSpgemm:
    @given(st.integers(1, 30), st.integers(1, 30), st.integers(1, 30),
           st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_matches_dense(self, m, k, n, seed):
        a = random_dense(m, k, 0.2, seed=seed)
        b = random_dense(k, n, 0.2, seed=seed + 1)
        C = spgemm(csr_of(a), csr_of(b))
        assert np.allclose(C.to_dense(), a @ b)

    @given(st.integers(1, 25), st.integers(1, 25), st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_matches_scipy(self, m, n, seed):
        import scipy.sparse as sp

        a = random_dense(m, n, 0.25, seed=seed)
        b = random_dense(n, m, 0.25, seed=seed + 2)
        C = spgemm(csr_of(a), csr_of(b))
        ref = (sp.csr_matrix(a) @ sp.csr_matrix(b)).toarray()
        assert np.allclose(C.to_dense(), ref)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            spgemm(CSRMatrix.empty((2, 3)), CSRMatrix.empty((4, 2)))

    def test_empty_operands(self):
        C = spgemm(CSRMatrix.empty((3, 4)), CSRMatrix.empty((4, 5)))
        assert C.shape == (3, 5) and C.nnz == 0

    def test_identity(self):
        d = random_dense(10, 10, 0.3, seed=3)
        C = spgemm(csr_of(d), csr_of(np.eye(10)))
        assert np.allclose(C.to_dense(), d)

    def test_associativity(self):
        a = random_dense(8, 8, 0.3, seed=4)
        b = random_dense(8, 8, 0.3, seed=5)
        c = random_dense(8, 8, 0.3, seed=6)
        left = spgemm(spgemm(csr_of(a), csr_of(b)), csr_of(c))
        right = spgemm(csr_of(a), spgemm(csr_of(b), csr_of(c)))
        assert np.allclose(left.to_dense(), right.to_dense())

    def test_flops_metric(self):
        a = np.zeros((2, 2))
        a[0, 0] = 1.0
        b = np.zeros((2, 2))
        b[0, :] = 1.0      # the one A entry meets a 2-nnz B row
        assert spgemm_flops(csr_of(a), csr_of(b)) == 4

    def test_flops_shape_mismatch(self):
        with pytest.raises(ShapeError):
            spgemm_flops(CSRMatrix.empty((2, 3)), CSRMatrix.empty((2, 3)))


class TestSpMSpVViaSpGEMM:
    @given(st.integers(1, 40), st.integers(1, 40),
           st.integers(0, 10**6), st.floats(0.0, 0.6))
    @settings(max_examples=30, deadline=None)
    def test_matches_dense(self, m, n, seed, xd):
        d = random_dense(m, n, 0.2, seed=seed)
        x = random_sparse_vector(n, xd, seed=seed + 1)
        y = SpMSpVViaSpGEMM(COOMatrix.from_dense(d)).multiply(x)
        assert np.allclose(y.to_dense(), d @ x.to_dense())

    def test_shape_error(self):
        with pytest.raises(ShapeError):
            SpMSpVViaSpGEMM(np.eye(4)).multiply(SparseVector.empty(5))

    def test_paper_claim_less_efficient_than_tiled(self):
        """§1: calling SpGEMM for SpMSpV is less efficient — the
        simulated times must agree on a mid-size matrix."""
        from repro.core import TileSpMSpV
        from repro.matrices import fem_like

        coo = fem_like(8192, nnz_per_row=40, block=16, seed=7)
        x = random_sparse_vector(coo.shape[1], 0.01)
        times = {}
        for name, make in (
                ("tile", lambda d: TileSpMSpV(coo, nt=16, device=d)),
                ("spgemm", lambda d: SpMSpVViaSpGEMM(coo, device=d))):
            dev = Device(RTX3090)
            make(dev).multiply(x)
            times[name] = dev.elapsed_ms
        assert times["tile"] < times["spgemm"]

    def test_device_record_submitted(self):
        dev = Device(RTX3090)
        d = random_dense(30, 30, 0.2, seed=8)
        SpMSpVViaSpGEMM(d, device=dev).multiply(
            random_sparse_vector(30, 0.2, seed=9))
        assert [r.name for r in dev.timeline] == ["spmspv_via_spgemm"]
