"""Unit tests for the shared vectorized building blocks."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import (ceil_div, concat_ranges, group_starts,
                         segment_reduce, segment_sum)


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(12, 4) == 3

    def test_rounds_up(self):
        assert ceil_div(13, 4) == 4

    def test_zero_numerator(self):
        assert ceil_div(0, 7) == 0

    def test_one(self):
        assert ceil_div(1, 64) == 1

    @given(st.integers(0, 10**9), st.integers(1, 10**6))
    def test_matches_float_ceil(self, a, b):
        assert ceil_div(a, b) == -(-a // b) == (a + b - 1) // b


class TestConcatRanges:
    def test_empty(self):
        out = concat_ranges(np.array([], dtype=np.int64),
                            np.array([], dtype=np.int64))
        assert len(out) == 0

    def test_single_range(self):
        out = concat_ranges(np.array([5]), np.array([3]))
        assert out.tolist() == [5, 6, 7]

    def test_multiple_ranges(self):
        out = concat_ranges(np.array([0, 10, 100]), np.array([2, 0, 3]))
        assert out.tolist() == [0, 1, 100, 101, 102]

    def test_zero_length_ranges_skipped(self):
        out = concat_ranges(np.array([7, 8, 9]), np.array([0, 0, 0]))
        assert len(out) == 0

    @given(st.lists(st.tuples(st.integers(0, 1000), st.integers(0, 20)),
                    max_size=30))
    @settings(max_examples=50)
    def test_matches_naive(self, pairs):
        starts = np.array([p[0] for p in pairs], dtype=np.int64)
        lengths = np.array([p[1] for p in pairs], dtype=np.int64)
        expected = np.concatenate(
            [np.arange(s, s + l) for s, l in pairs]) if pairs else \
            np.zeros(0, dtype=np.int64)
        got = concat_ranges(starts, lengths)
        assert np.array_equal(got, expected)


class TestSegmentSum:
    def test_basic(self):
        out = segment_sum(np.array([1.0, 2.0, 3.0]),
                          np.array([0, 0, 2]), 3)
        assert out.tolist() == [3.0, 0.0, 3.0]

    def test_empty(self):
        out = segment_sum(np.zeros(0), np.zeros(0, dtype=np.int64), 4)
        assert out.tolist() == [0.0] * 4

    def test_unsorted_ids(self):
        out = segment_sum(np.array([1.0, 2.0, 3.0, 4.0]),
                          np.array([2, 0, 2, 1]), 3)
        assert out.tolist() == [2.0, 4.0, 4.0]


class TestSegmentReduce:
    def test_min_reduce(self):
        out = segment_reduce(np.minimum, np.array([5.0, 2.0, 9.0]),
                             np.array([0, 0, 1]), 3, np.inf)
        assert out[0] == 2.0 and out[1] == 9.0 and np.isinf(out[2])

    def test_empty_values(self):
        out = segment_reduce(np.add, np.zeros(0),
                             np.zeros(0, dtype=np.int64), 2, 0.0)
        assert out.tolist() == [0.0, 0.0]

    @given(st.lists(st.integers(0, 4), max_size=40))
    @settings(max_examples=40)
    def test_sum_matches_bincount(self, ids):
        ids = np.sort(np.array(ids, dtype=np.int64))
        vals = np.ones(len(ids))
        out = segment_reduce(np.add, vals, ids, 5, 0.0)
        assert np.array_equal(out, np.bincount(ids, minlength=5))


class TestGroupStarts:
    def test_empty(self):
        assert len(group_starts(np.zeros(0, dtype=np.int64))) == 0

    def test_all_same(self):
        assert group_starts(np.array([3, 3, 3])).tolist() == [0]

    def test_runs(self):
        assert group_starts(np.array([1, 1, 2, 5, 5, 5])).tolist() == [0, 2, 3]
