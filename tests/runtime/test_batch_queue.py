"""The request-coalescing scheduler: dispatch policy, grouping,
stats, and the degenerate-batch property.

The property test is the PR's oracle: a queue with ``max_batch=1``
(every request dispatched alone, so the batched kernel runs at B=1)
must reproduce the single-vector path *exactly* — result values,
device-timeline counters, and trace events (same counters and priced
times; only kernel names and phase labels differ by design)."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TileSpMSpV
from repro.formats import COOMatrix
from repro.gpusim import Device
from repro.runtime import BatchQueue, ExecutionContext, Tracer
from repro.semiring import MIN_PLUS, PLUS_TIMES
from repro.vectors import SparseVector

from ..conftest import random_dense

N = 120


@pytest.fixture(scope="module")
def coo():
    return COOMatrix.from_dense(random_dense(N, N, 0.05, seed=71))


def vec(seed, k=8):
    r = np.random.default_rng(seed)
    idx = np.sort(r.choice(N, size=k, replace=False))
    return SparseVector(N, idx, 1.0 + r.random(k))


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, seconds):
        self.t += seconds


# ----------------------------------------------------------------------
# dispatch policy
# ----------------------------------------------------------------------
class TestDispatchPolicy:
    def test_size_budget(self, coo):
        q = BatchQueue(coo, nt=8, max_batch=3)
        t1, t2 = q.submit(vec(1)), q.submit(vec(2))
        assert not t1.done and not t2.done and q.pending == 2
        t3 = q.submit(vec(3))
        assert t1.done and t2.done and t3.done and q.pending == 0
        assert t1.batch_id == t2.batch_id == t3.batch_id
        assert t1.batch_size == 3

    def test_explicit_flush(self, coo):
        q = BatchQueue(coo, nt=8, max_batch=100)
        tickets = [q.submit(vec(s)) for s in range(4)]
        assert q.pending == 4
        assert q.flush() == 4
        assert all(t.done for t in tickets)
        assert q.flush() == 0

    def test_result_forces_flush(self, coo):
        q = BatchQueue(coo, nt=8, max_batch=100)
        t = q.submit(vec(5))
        y = t.result()
        assert t.done and q.pending == 0
        y_ref = TileSpMSpV(coo, nt=8).multiply(vec(5))
        assert np.array_equal(y.to_dense(), y_ref.to_dense())

    def test_latency_budget_with_fake_clock(self, coo):
        clock = FakeClock()
        q = BatchQueue(coo, nt=8, max_batch=100, max_delay_ms=50.0,
                       clock=clock)
        t1 = q.submit(vec(1))
        clock.advance(0.020)                  # 20 ms: still within
        t2 = q.submit(vec(2))
        assert not t1.done and not t2.done
        clock.advance(0.035)                  # oldest is now 55 ms old
        t3 = q.submit(vec(3))
        assert t1.done and t2.done and t3.done
        assert t1.batch_size == 3

    def test_no_time_dispatch_without_budget(self, coo):
        clock = FakeClock()
        q = BatchQueue(coo, nt=8, max_batch=100, clock=clock)
        t = q.submit(vec(1))
        clock.advance(1e6)
        q.submit(vec(2))
        assert not t.done and q.pending == 2

    def test_semiring_groups_are_separate(self, coo):
        q = BatchQueue(coo, nt=8, max_batch=2)
        a1 = q.submit(vec(1), semiring=PLUS_TIMES)
        b1 = q.submit(vec(2), semiring=MIN_PLUS)
        assert q.pending == 2 and not a1.done and not b1.done
        a2 = q.submit(vec(3), semiring=PLUS_TIMES)
        # the plus_times group filled; min_plus still waits
        assert a1.done and a2.done and not b1.done
        assert q.flush(MIN_PLUS) == 1
        assert b1.done
        y_ref = TileSpMSpV(coo, nt=8, semiring=MIN_PLUS).multiply(vec(2))
        assert np.array_equal(b1.result().to_dense(), y_ref.to_dense())

    def test_stats(self, coo):
        q = BatchQueue(coo, nt=8, max_batch=2)
        for s in range(5):
            q.submit(vec(s))
        stats = q.stats()
        assert stats == {"requests": 5, "batches": 2, "dispatched": 4,
                         "pending": 1, "mean_batch_size": 2.0,
                         "affinity_seeded": 0}

    def test_validation(self, coo):
        with pytest.raises(ValueError):
            BatchQueue(coo, max_batch=0)
        with pytest.raises(ValueError):
            BatchQueue(coo, max_delay_ms=-1.0)
        q = BatchQueue(coo, nt=8)
        with pytest.raises(ValueError):
            q.submit(vec(1), output="list")

    def test_dense_output(self, coo):
        q = BatchQueue(coo, nt=8, max_batch=1)
        t = q.submit(vec(9), output="dense")
        y_ref = TileSpMSpV(coo, nt=8).multiply(vec(9), output="dense")
        assert np.array_equal(t.result(), y_ref)

    def test_dispatch_tags_reach_trace(self, coo):
        tracer = Tracer()
        ctx = ExecutionContext(device=Device(), tracer=tracer)
        q = BatchQueue(coo, nt=8, max_batch=2, device=ctx)
        q.submit(vec(1))
        q.submit(vec(2))
        tags = [ev.tag for ev in tracer.events]
        assert "batch=0 size=2" in tags


# ----------------------------------------------------------------------
# external dispatch surface (what the serving layer drives)
# ----------------------------------------------------------------------
class TestExternalDispatch:
    def test_next_deadline_tracks_oldest(self, coo):
        clock = FakeClock()
        q = BatchQueue(coo, nt=8, max_batch=100, max_delay_ms=10.0,
                       clock=clock)
        assert q.next_deadline_ms() is None       # nothing pending
        q.submit(vec(1))
        assert q.next_deadline_ms() == pytest.approx(10.0)
        clock.advance(0.004)
        assert q.next_deadline_ms() == pytest.approx(6.0)
        clock.advance(0.008)                      # 2 ms overdue
        assert q.next_deadline_ms() == pytest.approx(-2.0)

    def test_next_deadline_none_without_budget(self, coo):
        q = BatchQueue(coo, nt=8, max_batch=100)
        q.submit(vec(1))
        assert q.next_deadline_ms() is None

    def test_dispatch_overdue(self, coo):
        clock = FakeClock()
        q = BatchQueue(coo, nt=8, max_batch=100, max_delay_ms=10.0,
                       clock=clock)
        t = q.submit(vec(1))
        assert q.dispatch_overdue() == 0 and not t.done
        clock.advance(0.011)
        assert q.dispatch_overdue() == 1 and t.done
        assert q.dispatch_overdue() == 0

    def test_on_dispatch_callback(self, coo):
        calls = []
        q = BatchQueue(coo, nt=8, max_batch=2, device=Device(),
                       on_dispatch=lambda tk, bid, ms:
                       calls.append((tk, bid, ms)))
        t1, t2 = q.submit(vec(1)), q.submit(vec(2))
        assert len(calls) == 1
        tickets, batch_id, modeled_ms = calls[0]
        assert tickets == [t1, t2] and batch_id == 0
        assert all(t.done for t in tickets)       # done before callback
        assert modeled_ms > 0                     # priced by the device
        q.submit(vec(3))
        assert q.flush() == 1 and len(calls) == 2
        assert calls[1][1] == 1 and len(calls[1][0]) == 1

    def test_on_dispatch_modeled_ms_without_device(self, coo):
        calls = []
        q = BatchQueue(coo, nt=8, max_batch=1,
                       on_dispatch=lambda tk, bid, ms: calls.append(ms))
        q.submit(vec(1))
        assert calls == [0.0]

    def test_warm_prebuilds_cached_plan(self, coo):
        from repro.runtime import PlanCache
        cache = PlanCache()
        q = BatchQueue(coo, nt=8, plan_cache=cache)
        assert cache.stats()["size"] == 0
        q.warm()
        assert cache.stats()["size"] == 1
        misses = cache.stats()["misses"]
        t = q.submit(vec(1))
        t.result()
        assert cache.stats()["misses"] == misses  # dispatch reused it

    def test_tag_prefix_reaches_trace(self, coo):
        tracer = Tracer()
        ctx = ExecutionContext(device=Device(), tracer=tracer)
        q = BatchQueue(coo, nt=8, max_batch=2, device=ctx,
                       tag_prefix="mat=hot;")
        q.submit(vec(1))
        q.submit(vec(2))
        assert "mat=hot;batch=0 size=2" in [ev.tag
                                            for ev in tracer.events]


# ----------------------------------------------------------------------
# the degenerate-batch property: max_batch=1 == the single-vector path
# ----------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=2**16),
                min_size=1, max_size=4),
       st.sampled_from([PLUS_TIMES, MIN_PLUS]))
@settings(max_examples=25, deadline=None)
def test_batch_size_one_reproduces_single_path(seeds, semiring):
    coo = COOMatrix.from_dense(random_dense(N, N, 0.05, seed=71))

    single_tracer = Tracer()
    single_ctx = ExecutionContext(device=Device(),
                                  tracer=single_tracer)
    single = TileSpMSpV(coo, nt=8, semiring=semiring,
                        device=single_ctx)

    queue_tracer = Tracer()
    queue_ctx = ExecutionContext(device=Device(), tracer=queue_tracer)
    q = BatchQueue(coo, nt=8, max_batch=1, device=queue_ctx)

    for seed in seeds:
        x = vec(seed)
        t = q.submit(x, semiring=semiring)
        assert t.done and t.batch_size == 1    # dispatched immediately
        y_ref = single.multiply(x)
        y = t.result()
        # results: exact, values and pattern
        assert np.array_equal(y.indices, y_ref.indices)
        assert np.array_equal(y.values, y_ref.values)

    # trace events: same count, and pairwise identical counters and
    # priced durations — only the kernel name and phase label differ
    assert len(queue_tracer.events) == len(single_tracer.events)
    for qe, se in zip(queue_tracer.events, single_tracer.events):
        assert qe.dur_ms == se.dur_ms
        for f in dataclasses.fields(se.counters):
            assert getattr(qe.counters, f.name) == \
                getattr(se.counters, f.name), f.name
    # and therefore the device timelines agree to the microsecond
    assert queue_ctx.elapsed_ms == single_ctx.elapsed_ms
