"""Tracer export: JSONL rows and Chrome trace_event JSON."""

import json

import pytest

from repro.gpusim import Device, RTX3090
from repro.runtime import ExecutionContext, Tracer
from repro.bench.trace import run_traced_workload


@pytest.fixture(scope="module")
def traced():
    """One small traced workload shared by the structural tests."""
    return run_traced_workload(matrix="cant",
                               operators=("tilespmspv", "tilebfs"),
                               sparsity=0.05)


class TestTracerClock:
    def test_events_cover_device_elapsed(self, traced):
        tracer, device = traced
        assert len(tracer) == len(device.timeline) > 0
        assert tracer.total_ms == pytest.approx(device.elapsed_ms)
        assert sum(ev.dur_ms for ev in tracer.events) == pytest.approx(
            device.elapsed_ms)

    def test_serial_clock_monotone_and_gapless(self, traced):
        tracer, _ = traced
        clock = 0.0
        for ev in tracer.events:
            assert ev.start_ms == pytest.approx(clock)
            clock += ev.dur_ms

    def test_clear(self):
        tracer = Tracer()
        ctx = ExecutionContext(device=Device(RTX3090), tracer=tracer)
        from repro.gpusim import KernelCounters
        ctx.launch("k", KernelCounters(launches=1))
        tracer.clear()
        assert len(tracer) == 0 and tracer.total_ms == 0.0


class TestJsonl:
    def test_lines_parse_and_match_events(self, traced):
        tracer, _ = traced
        lines = tracer.to_jsonl().splitlines()
        assert len(lines) == len(tracer)
        for i, line in enumerate(lines):
            row = json.loads(line)
            assert row["seq"] == i
            assert row["operator"] in ("tilespmspv", "tilebfs")
            assert row["dur_ms"] >= 0
            assert "counters" in row and "time" in row

    def test_write_jsonl(self, traced, tmp_path):
        tracer, _ = traced
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)
        rows = [json.loads(line) for line in
                path.read_text().splitlines()]
        assert len(rows) == len(tracer)


class TestChromeTrace:
    def test_structure(self, traced):
        tracer, device = traced
        doc = tracer.to_chrome()
        # round-trips through JSON (i.e. loads as a chrome trace file)
        doc = json.loads(json.dumps(doc))
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(complete) == len(device.timeline)
        # one named track per operator
        assert {m["args"]["name"] for m in meta} == {"tilespmspv",
                                                     "tilebfs"}
        for e in complete:
            assert set(e) >= {"name", "ph", "ts", "dur", "pid", "tid"}
            assert isinstance(e["tid"], int)
            assert e["ts"] >= 0 and e["dur"] >= 0

    def test_timestamps_in_microseconds(self, traced):
        tracer, device = traced
        complete = [e for e in tracer.to_chrome()["traceEvents"]
                    if e["ph"] == "X"]
        total_us = sum(e["dur"] for e in complete)
        assert total_us == pytest.approx(device.elapsed_ms * 1000.0)
        ts = [e["ts"] for e in complete]
        assert ts == sorted(ts)

    def test_write_chrome_loads(self, traced, tmp_path):
        tracer, _ = traced
        path = tmp_path / "trace.json"
        tracer.write_chrome(path)
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        assert "traceEvents" in doc and len(doc["traceEvents"]) > 0


class TestCli:
    def test_trace_subcommand_chrome(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        out = tmp_path / "t.json"
        rc = main(["trace", "--matrix", "cant",
                   "--operators", "tilespmspv,combblas",
                   "--out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        tracks = {e["args"]["name"] for e in doc["traceEvents"]
                  if e["ph"] == "M"}
        assert tracks == {"tilespmspv", "combblas"}
        assert "launches" in capsys.readouterr().out

    def test_trace_subcommand_jsonl(self, tmp_path):
        from repro.bench.__main__ import main

        out = tmp_path / "t.jsonl"
        rc = main(["trace", "--matrix", "cant",
                   "--operators", "tilebfs", "--format", "jsonl",
                   "--out", str(out)])
        assert rc == 0
        rows = [json.loads(line) for line in
                out.read_text().splitlines()]
        assert rows and all(r["operator"] == "tilebfs" for r in rows)

    def test_trace_shard_filter(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        out = tmp_path / "s.jsonl"
        rc = main(["trace", "--matrix", "cant",
                   "--operators", "sharded-spmspv",
                   "--shard", "1", "--format", "jsonl",
                   "--out", str(out)])
        assert rc == 0
        rows = [json.loads(line) for line in
                out.read_text().splitlines()]
        assert rows
        assert all("shard=1" in r["tag"].split(";") for r in rows)
        assert "of" in capsys.readouterr().out

    def test_trace_device_filter_with_workers(self, tmp_path, capsys,
                                              monkeypatch):
        from repro.bench.__main__ import main

        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        out = tmp_path / "d.jsonl"
        rc = main(["trace", "--matrix", "cant",
                   "--operators", "sharded-spmspv",
                   "--workers", "2", "--device", "1",
                   "--format", "jsonl", "--out", str(out)])
        assert rc == 0
        rows = [json.loads(line) for line in
                out.read_text().splitlines()]
        assert rows
        assert all("device=1" in r["tag"].split(";") for r in rows)
        assert all("worker=" in r["tag"] for r in rows)
        assert "device=1" in capsys.readouterr().out


class TestShardFilter:
    def test_filtered_by_shard_splits_tags(self):
        from repro.gpusim import KernelCounters

        tracer = Tracer()
        ctx = ExecutionContext(device=Device(RTX3090), tracer=tracer)
        ctx.launch("a", KernelCounters(launches=1), tag="shard=1")
        ctx.launch("b", KernelCounters(launches=1), tag="bfs;shard=12")
        ctx.launch("c", KernelCounters(launches=1), tag="shard=12")
        ctx.launch("d", KernelCounters(launches=1))
        kept = tracer.filtered_by_shard(12)
        assert [ev.name for ev in kept.events] == ["b", "c"]
        # original seq and the full-timeline clock are retained
        assert [ev.seq for ev in kept.events] == [1, 2]
        assert kept.total_ms == tracer.total_ms

    def test_filtered_by_device_splits_tags(self):
        from repro.gpusim import KernelCounters

        tracer = Tracer()
        ctx = ExecutionContext(device=Device(RTX3090), tracer=tracer)
        ctx.launch("a", KernelCounters(launches=1),
                   tag="shard=0;device=0;worker=0")
        ctx.launch("b", KernelCounters(launches=1),
                   tag="shard=3;device=1;worker=1")
        ctx.launch("c", KernelCounters(launches=1),
                   tag="shard=5;device=1;worker=1")
        ctx.launch("d", KernelCounters(launches=1))
        kept = tracer.filtered_by_device(1)
        assert [ev.name for ev in kept.events] == ["b", "c"]
        # device=1 must not match device=11 and vice versa
        ctx.launch("e", KernelCounters(launches=1),
                   tag="shard=9;device=11;worker=2")
        assert [ev.name for ev in
                tracer.filtered_by_device(1).events] == ["b", "c"]
