"""The runtime migration's invariants.

Two guarantees from the refactor: (1) every operator launches through
:class:`~repro.runtime.ExecutionContext` — no direct ``device.submit``
call sites survive outside the runtime and the device itself; (2) the
migrated launch path prices and records exactly what direct submission
did (same `LaunchRecord` sequence, same ``elapsed_ms``).
"""

import pathlib
import re

import numpy as np

import repro
from repro.baselines import CombBLASSpMSpV
from repro.core import TileBFS, TileSpMSpV
from repro.gpusim import Device, RTX3090
from repro.runtime import ExecutionContext, Tracer
from repro.vectors import random_sparse_vector

from ..conftest import random_coo, random_graph_coo

SRC = pathlib.Path(repro.__file__).parent


class TestNoDirectSubmitCallSites:
    def test_submit_confined_to_runtime_and_gpusim(self):
        offenders = []
        for path in SRC.rglob("*.py"):
            rel = path.relative_to(SRC)
            if rel.parts[0] in ("gpusim", "runtime"):
                continue
            for lineno, line in enumerate(
                    path.read_text(encoding="utf-8").splitlines(), 1):
                # the serving layer's queue.submit / service.submit are
                # request-coalescing APIs, not device submission
                if re.search(r"(?<!queue)(?<!service)\.submit\(", line):
                    offenders.append(f"{rel}:{lineno}: {line.strip()}")
        assert not offenders, (
            "direct device.submit call sites outside runtime/gpusim:\n"
            + "\n".join(offenders))


class TestTimelineEquivalence:
    """A bare Device and a tracer-carrying ExecutionContext must yield
    byte-identical priced timelines."""

    def test_tilespmspv_core_operator(self):
        coo = random_coo(96, 96, density=0.08, seed=11)
        x = random_sparse_vector(96, 0.05)
        dev_direct = Device(RTX3090)
        TileSpMSpV(coo, nt=16, device=dev_direct).multiply(x)

        dev_ctx = Device(RTX3090)
        ctx = ExecutionContext(device=dev_ctx, tracer=Tracer())
        TileSpMSpV(coo, nt=16, device=ctx).multiply(x)

        assert dev_direct.timeline == dev_ctx.timeline
        assert dev_direct.elapsed_ms == dev_ctx.elapsed_ms
        # tags on the records stay None — operator/phase metadata lives
        # only on trace events, keeping records identical to the
        # pre-runtime layout
        assert all(rec.tag is None for rec in dev_ctx.timeline)

    def test_combblas_baseline(self):
        coo = random_coo(96, 96, density=0.08, seed=12)
        x = random_sparse_vector(96, 0.05)
        dev_direct = Device(RTX3090)
        CombBLASSpMSpV(coo, device=dev_direct).multiply(x)

        dev_ctx = Device(RTX3090)
        ctx = ExecutionContext(device=dev_ctx, tracer=Tracer())
        CombBLASSpMSpV(coo, device=ctx).multiply(x)

        assert dev_direct.timeline == dev_ctx.timeline
        assert dev_direct.elapsed_ms == dev_ctx.elapsed_ms

    def test_tilebfs_traversal(self):
        g = random_graph_coo(150, avg_degree=5.0, seed=13)
        dev_a, dev_b = Device(RTX3090), Device(RTX3090)
        r1 = TileBFS(g, device=dev_a).run(0)
        ctx = ExecutionContext(device=dev_b, tracer=Tracer())
        r2 = TileBFS(g, device=ctx).run(0)
        assert np.array_equal(r1.levels, r2.levels)
        assert dev_a.timeline == dev_b.timeline
        assert dev_a.elapsed_ms == dev_b.elapsed_ms

    def test_tracer_durations_match_timeline(self):
        coo = random_coo(96, 96, density=0.08, seed=14)
        x = random_sparse_vector(96, 0.05)
        tracer = Tracer()
        dev = Device(RTX3090)
        op = TileSpMSpV(coo, nt=16,
                        device=ExecutionContext(device=dev,
                                                tracer=tracer))
        op.multiply(x)
        assert [ev.name for ev in tracer.events] == \
            [rec.name for rec in dev.timeline]
        assert [ev.dur_ms for ev in tracer.events] == \
            [rec.ms for rec in dev.timeline]
