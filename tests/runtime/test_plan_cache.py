"""OperatorPlan cache: repeated construction skips re-tiling."""

import numpy as np
import pytest

from repro.core import TileBFS, TileSpMSpV
from repro.gpusim import Device, RTX3090
from repro.runtime import (OperatorPlan, PlanCache, default_plan_cache,
                           matrix_token, plan_cache_stats,
                           reset_plan_cache)
from repro.vectors import random_sparse_vector

from ..conftest import random_coo, random_graph_coo


class TestPlanCachePrimitive:
    def test_hit_miss_stats(self):
        cache = PlanCache(maxsize=4)
        key = ("k", 1)
        built = []

        def build():
            built.append(1)
            return OperatorPlan(kind="t", key=key, data={"v": 42})

        p1 = cache.get_or_build(key, build)
        p2 = cache.get_or_build(key, build)
        assert p1 is p2
        assert built == [1]
        s = cache.stats()
        assert (s["hits"], s["misses"]) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        for i in range(3):
            cache.put(("k", i), OperatorPlan(kind="t", key=("k", i),
                                             data={}))
        assert cache.stats()["size"] == 2
        assert cache.stats()["evictions"] == 1
        assert cache.get(("k", 0)) is None       # oldest evicted
        assert cache.get(("k", 2)) is not None

    def test_matrix_token_distinguishes_objects(self):
        a = random_coo(20, 20, seed=1)
        b = random_coo(20, 20, seed=1)
        assert matrix_token(a) != matrix_token(b)
        assert matrix_token(a) == matrix_token(a)


class TestPinningUnderPressure:
    """Sharded execution pins the plan of the shard currently running a
    kernel; a flood of plans for other matrices must never evict it."""

    @staticmethod
    def _plan(key):
        return OperatorPlan(kind="t", key=key, data={})

    def test_pinned_entries_survive_eviction_pressure(self):
        cache = PlanCache(maxsize=4)
        pinned_keys = [("shard", "mat-a", sid) for sid in range(3)]
        for key in pinned_keys:
            cache.put(key, self._plan(key), pinned=True)
        # flood: many distinct matrix ids, far beyond maxsize
        flood_keys = [("shard", f"mat-{i}", 0) for i in range(40)]
        for key in flood_keys:
            cache.put(key, self._plan(key))
        for key in pinned_keys:
            assert cache.is_pinned(key)
            assert cache.get(key) is not None
        # only unpinned entries were evicted, LRU-first
        survivors = [k for k in flood_keys if k in cache]
        assert survivors == flood_keys[-1:]
        assert len(cache) == 4
        assert cache.stats()["pinned"] == 3
        assert cache.stats()["evictions"] == 39

    def test_all_pinned_cache_runs_over_budget(self):
        cache = PlanCache(maxsize=2)
        keys = [("shard", "m", sid) for sid in range(5)]
        for key in keys:
            cache.put(key, self._plan(key), pinned=True)
        assert len(cache) == 5                    # over budget, no evictions
        assert cache.stats()["evictions"] == 0
        # unpinning brings it back under budget on the next insert
        for key in keys[:4]:
            assert cache.unpin(key)
        cache.put(("shard", "m", 5), self._plan(("shard", "m", 5)))
        assert len(cache) == 2
        assert keys[4] in cache                   # still-pinned survivor

    def test_hit_rate_unaffected_by_pin_state(self):
        cache = PlanCache(maxsize=8)
        key = ("shard", "m", 0)
        cache.get_or_build(key, lambda: self._plan(key), pinned=True)
        for _ in range(3):
            cache.get_or_build(key, lambda: self._plan(key))
        s = cache.stats()
        assert (s["hits"], s["misses"]) == (3, 1)
        assert cache.hit_rate == 0.75

    def test_pin_unpin_remove_bookkeeping(self):
        cache = PlanCache(maxsize=4)
        key = ("shard", "m", 0)
        assert not cache.pin(key)                 # absent: no-op
        cache.put(key, self._plan(key))
        assert cache.pin(key)
        assert cache.is_pinned(key)
        assert cache.unpin(key)
        assert not cache.is_pinned(key)
        assert cache.remove(key)
        assert not cache.remove(key)
        s = cache.stats()
        assert s["removals"] == 1
        assert s["evictions"] == 0


class TestSpMSpVPlanReuse:
    def test_second_construction_hits_and_shares_plan(self):
        cache = PlanCache()
        coo = random_coo(64, 64, density=0.1, seed=2)
        op1 = TileSpMSpV(coo, nt=16, plan_cache=cache)
        op2 = TileSpMSpV(coo, nt=16, plan_cache=cache)
        assert op2.hybrid is op1.hybrid
        s = cache.stats()
        assert s["hits"] == 1 and s["misses"] == 1

    def test_different_params_miss(self):
        cache = PlanCache()
        coo = random_coo(64, 64, density=0.1, seed=2)
        TileSpMSpV(coo, nt=16, plan_cache=cache)
        TileSpMSpV(coo, nt=32, plan_cache=cache)
        TileSpMSpV(coo, nt=16, extract_threshold=0, plan_cache=cache)
        assert cache.stats()["misses"] == 3
        assert cache.stats()["hits"] == 0

    def test_cached_plan_results_identical(self):
        cache = PlanCache()
        coo = random_coo(80, 80, density=0.08, seed=4)
        x = random_sparse_vector(80, 0.1)
        y1 = TileSpMSpV(coo, nt=16, plan_cache=cache).multiply(x)
        y2 = TileSpMSpV(coo, nt=16, plan_cache=cache).multiply(x)
        assert np.array_equal(y1.indices, y2.indices)
        assert np.allclose(y1.values, y2.values)

    def test_cached_plan_identical_launch_records(self):
        cache = PlanCache()
        coo = random_coo(80, 80, density=0.08, seed=4)
        x = random_sparse_vector(80, 0.1)
        d1, d2 = Device(RTX3090), Device(RTX3090)
        TileSpMSpV(coo, nt=16, plan_cache=cache, device=d1).multiply(x)
        TileSpMSpV(coo, nt=16, plan_cache=cache, device=d2).multiply(x)
        assert d1.timeline == d2.timeline
        assert d1.elapsed_ms == d2.elapsed_ms

    def test_transposed_tiling_shared_between_operators(self):
        cache = PlanCache()
        coo = random_coo(64, 64, density=0.1, seed=5)
        op1 = TileSpMSpV(coo, nt=16, mode="csc", plan_cache=cache)
        op2 = TileSpMSpV(coo, nt=16, mode="csc", plan_cache=cache)
        x = random_sparse_vector(64, 0.05)
        op1.multiply(x)
        assert op1._transposed_tiled is not None
        # the lazily built A^T tiling lives on the shared plan
        assert op2._transposed_tiled is op1._transposed_tiled


class TestBFSPlanReuse:
    def test_tilebfs_second_construction_hits(self):
        cache = PlanCache()
        g = random_graph_coo(150, avg_degree=5.0, seed=6)
        b1 = TileBFS(g, plan_cache=cache)
        b2 = TileBFS(g, plan_cache=cache)
        s = cache.stats()
        assert s["hits"] == 1 and s["misses"] == 1
        r1, r2 = b1.run(0), b2.run(0)
        assert np.array_equal(r1.levels, r2.levels)

    def test_prebuilt_matrix_bypasses_cache(self):
        from repro.tiles.tiled_matrix import TiledMatrix

        cache = PlanCache()
        coo = random_coo(64, 64, density=0.1, seed=7)
        tiled = TiledMatrix.from_coo(coo, 16)
        TileSpMSpV(tiled, nt=16, plan_cache=cache)
        s = cache.stats()
        assert s["hits"] == s["misses"] == 0


class TestDefaultCache:
    @pytest.fixture(autouse=True)
    def _fresh_default_cache(self):
        reset_plan_cache()
        yield
        reset_plan_cache()

    def test_module_level_stats(self):
        coo = random_coo(64, 64, density=0.1, seed=8)
        TileSpMSpV(coo, nt=16)
        TileSpMSpV(coo, nt=16)
        s = plan_cache_stats()
        assert s["hits"] >= 1
        assert default_plan_cache().hit_rate > 0.0
