"""Operator registry: name-based dispatch for harness, CLI, benchmarks."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.gpusim import Device, RTX3090
from repro.runtime import (available_operators, create_operator,
                           operator_aliases, operator_kind,
                           resolve_operator)
from repro.vectors import random_sparse_vector

from ..conftest import random_coo, random_graph_coo

ALL_NAMES = ("tilespmspv", "tilebfs", "msbfs", "tilespmv", "tilespmm",
             "cusparse-bsr", "combblas", "spmspv-via-spgemm", "gunrock",
             "gswitch", "enterprise")


class TestLookup:
    def test_all_expected_names_registered(self):
        names = available_operators()
        for name in ALL_NAMES:
            assert name in names

    def test_kind_filter(self):
        assert "tilebfs" in available_operators(kind="bfs")
        assert "tilespmspv" not in available_operators(kind="bfs")
        assert "tilespmm" in available_operators(kind="spmm")
        assert set(available_operators()) == {
            n for k in ("spmspv", "spmv", "spmm", "bfs", "msbfs")
            for n in available_operators(kind=k)}

    def test_operator_kind(self):
        assert operator_kind("tilespmspv") == "spmspv"
        assert operator_kind("cusparse-bsr") == "spmv"
        assert operator_kind("enterprise") == "bfs"
        assert operator_kind("msbfs") == "msbfs"
        assert operator_kind("tilespmm") == "spmm"

    def test_unknown_name_raises_with_available(self):
        with pytest.raises(ReproError, match="tilespmspv"):
            resolve_operator("nope")
        with pytest.raises(ReproError, match="unknown operator"):
            create_operator("nope", None)

    def test_alias_resolves_to_canonical_entry(self):
        # an alias resolves to the same entry, carrying the *canonical*
        # name (an alias must never masquerade as its own operator)
        via_alias = resolve_operator("spmspv")
        assert via_alias.name == "tilespmspv"
        assert via_alias is resolve_operator("tilespmspv")
        assert "spmspv" in via_alias.aliases

    def test_aliases_not_double_counted(self):
        # enumeration lists canonical names only: each operator once
        names = available_operators()
        assert len(names) == len(set(names))
        for alias in operator_aliases():
            assert alias not in names

    def test_alias_map(self):
        amap = operator_aliases()
        assert amap["spmspv"] == "tilespmspv"
        assert amap["bfs"] == "tilebfs"
        for alias, canonical in amap.items():
            assert resolve_operator(alias).name == canonical

    def test_capabilities_metadata(self):
        assert "semiring" in resolve_operator("tilespmspv").capabilities
        assert "batch" in resolve_operator("batched-spmspv").capabilities
        assert "semiring" not in resolve_operator(
            "spmspv-via-spgemm").capabilities

    def test_alias_collision_rejected(self):
        from repro.runtime import register_operator

        # an alias that collides with an existing name must be rejected
        # atomically (no partial registration)
        with pytest.raises(ReproError, match="already registered"):
            register_operator("x-fresh-name", kind="spmspv",
                              aliases=("tilespmspv",))(lambda m: m)
        with pytest.raises(ReproError, match="unknown operator"):
            resolve_operator("x-fresh-name")


class TestCreate:
    def test_create_spmspv_operators(self):
        coo = random_coo(64, 64, density=0.1, seed=1)
        x = random_sparse_vector(64, 0.1)
        results = {}
        for name in available_operators(kind="spmspv"):
            y = create_operator(name, coo).multiply(x)
            results[name] = y.to_dense()
        ref = results.pop("tilespmspv")
        for name, dense in results.items():
            assert np.allclose(dense, ref), name

    def test_create_bfs_operators_agree(self):
        g = random_graph_coo(100, avg_degree=5.0, seed=2)
        levels = {name: create_operator(name, g).run(0).levels
                  for name in available_operators(kind="bfs")}
        ref = levels.pop("tilebfs")
        for name, lv in levels.items():
            assert np.array_equal(lv, ref), name

    def test_kwargs_passthrough(self):
        coo = random_coo(64, 64, density=0.1, seed=3)
        op = create_operator("tilespmspv", coo, nt=32,
                             extract_threshold=0, mode="csc")
        assert op.nt == 32
        assert op.mode == "csc"
        bsr = create_operator("cusparse-bsr", coo, blocksize=8)
        assert bsr.bsr.blocksize == 8

    def test_device_forwarded(self):
        coo = random_coo(64, 64, density=0.1, seed=4)
        dev = Device(RTX3090)
        op = create_operator("combblas", coo, device=dev)
        op.multiply(random_sparse_vector(64, 0.1))
        assert len(dev.timeline) > 0

    def test_duplicate_registration_rejected(self):
        from repro.runtime import register_operator

        with pytest.raises(ReproError, match="already registered"):
            register_operator("tilespmspv", kind="spmspv")(lambda m: m)

    def test_unknown_kind_rejected(self):
        from repro.runtime import register_operator

        with pytest.raises(ReproError, match="kind"):
            register_operator("x-new-op", kind="wat")(lambda m: m)
