"""ExecutionContext: the single launch path onto the simulated device."""

import numpy as np
import pytest

from repro.core import TileSpMSpV
from repro.gpusim import Device, KernelCounters, RTX3090
from repro.runtime import ExecutionContext, Tracer
from repro.vectors import random_sparse_vector

from ..conftest import random_coo


def _counters():
    c = KernelCounters(launches=1)
    c.coalesced_read_bytes += 4096.0
    c.flops += 256.0
    c.warps = 8.0
    return c


class TestLaunch:
    def test_launch_appends_to_device_timeline(self):
        dev = Device(RTX3090)
        ctx = ExecutionContext(device=dev, operator="op")
        ms = ctx.launch("k1", _counters())
        assert len(dev.timeline) == 1
        assert dev.timeline[0].name == "k1"
        assert ms == dev.timeline[0].ms > 0
        assert ctx.elapsed_ms == dev.elapsed_ms

    def test_launch_matches_direct_submit(self):
        """ctx.launch must append exactly what device.submit would."""
        dev_direct, dev_ctx = Device(RTX3090), Device(RTX3090)
        ctx = ExecutionContext(device=dev_ctx, operator="op")
        for name in ("a", "b"):
            dev_direct.submit(name, _counters(), tag="t")
            ctx.launch(name, _counters(), tag="t", phase="p")
        assert dev_direct.timeline == dev_ctx.timeline
        assert dev_direct.elapsed_ms == dev_ctx.elapsed_ms

    def test_none_device_is_noop(self):
        ctx = ExecutionContext(device=None)
        assert ctx.launch("k", _counters()) == 0.0
        assert ctx.elapsed_ms == 0.0

    def test_tracer_sees_operator_and_phase(self):
        tracer = Tracer()
        ctx = ExecutionContext(device=Device(RTX3090), tracer=tracer,
                               operator="myop")
        ctx.launch("k", _counters(), phase="iteration")
        assert len(tracer) == 1
        ev = tracer.events[0]
        assert (ev.name, ev.operator, ev.phase) == ("k", "myop",
                                                    "iteration")

    def test_tracer_not_fed_without_device(self):
        tracer = Tracer()
        ctx = ExecutionContext(device=None, tracer=tracer)
        ctx.launch("k", _counters())
        assert len(tracer) == 0


class TestWrapAndScope:
    def test_wrap_device(self):
        dev = Device(RTX3090)
        ctx = ExecutionContext.wrap(dev, operator="x")
        assert ctx.device is dev
        assert ctx.operator == "x"

    def test_wrap_none(self):
        assert ExecutionContext.wrap(None).device is None

    def test_wrap_context_shares_device_and_tracer(self):
        tracer = Tracer()
        base = ExecutionContext(device=Device(RTX3090), tracer=tracer)
        scoped = ExecutionContext.wrap(base, operator="child")
        assert scoped.device is base.device
        assert scoped.tracer is tracer
        assert scoped.operator == "child"

    def test_scoped_contexts_share_one_timeline(self):
        base = ExecutionContext(device=Device(RTX3090))
        a, b = base.scoped("a"), base.scoped("b")
        a.launch("ka", _counters())
        b.launch("kb", _counters())
        assert [r.name for r in base.device.timeline] == ["ka", "kb"]


class TestOperatorDeviceProperty:
    def test_post_construction_device_assignment(self, small_coo):
        op = TileSpMSpV(small_coo, nt=16)
        assert op.device is None
        dev = Device(RTX3090)
        op.device = dev
        assert op.device is dev
        op.multiply(random_sparse_vector(small_coo.shape[1], 0.1))
        assert len(dev.timeline) > 0

    def test_context_assignment_rescopes(self, small_coo):
        op = TileSpMSpV(small_coo, nt=16)
        tracer = Tracer()
        op.device = ExecutionContext(device=Device(RTX3090),
                                     tracer=tracer)
        op.multiply(random_sparse_vector(small_coo.shape[1], 0.1))
        assert len(tracer) > 0
        assert all(ev.operator == "tilespmspv" for ev in tracer.events)


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("sparsity", [0.02, 0.2])
    def test_device_does_not_change_results(self, sparsity):
        coo = random_coo(90, 90, density=0.08, seed=3)
        x = random_sparse_vector(90, sparsity)
        y_none = TileSpMSpV(coo, nt=16).multiply(x)
        y_dev = TileSpMSpV(coo, nt=16,
                           device=Device(RTX3090)).multiply(x)
        assert np.array_equal(y_none.indices, y_dev.indices)
        assert np.allclose(y_none.values, y_dev.values)
