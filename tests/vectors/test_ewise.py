"""Tests for the element-wise SparseVector algebra (GraphBLAS eWise)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.vectors import SparseVector


def sv(n, entries):
    idx = np.array(sorted(entries), dtype=np.int64)
    vals = np.array([entries[i] for i in sorted(entries)])
    return SparseVector(n, idx, vals)


sparse_dicts = st.dictionaries(st.integers(0, 49),
                               st.floats(-10, 10, allow_nan=False),
                               max_size=20)


class TestEwiseAdd:
    def test_union_semantics(self):
        a = sv(10, {1: 1.0, 3: 2.0})
        b = sv(10, {3: 10.0, 5: 5.0})
        out = a.ewise_add(b)
        assert out.indices.tolist() == [1, 3, 5]
        assert out.values.tolist() == [1.0, 12.0, 5.0]

    def test_custom_op(self):
        a = sv(10, {0: 5.0})
        b = sv(10, {0: 2.0})
        assert a.ewise_add(b, op=np.minimum).values.tolist() == [2.0]
        assert a.ewise_add(b, op=np.maximum).values.tolist() == [5.0]

    def test_empty_operands(self):
        a = sv(10, {2: 1.0})
        e = SparseVector.empty(10)
        assert a.ewise_add(e).indices.tolist() == [2]
        assert e.ewise_add(a).indices.tolist() == [2]
        assert e.ewise_add(e).nnz == 0

    def test_length_mismatch(self):
        with pytest.raises(ShapeError):
            sv(10, {0: 1.0}).ewise_add(sv(9, {0: 1.0}))

    @given(sparse_dicts, sparse_dicts)
    @settings(max_examples=50)
    def test_matches_dense_add(self, da, db):
        a, b = sv(50, da), sv(50, db)
        out = a.ewise_add(b)
        assert np.allclose(out.to_dense(), a.to_dense() + b.to_dense())

    @given(sparse_dicts, sparse_dicts)
    @settings(max_examples=30)
    def test_commutative(self, da, db):
        a, b = sv(50, da), sv(50, db)
        x, y = a.ewise_add(b), b.ewise_add(a)
        assert np.array_equal(x.indices, y.indices)
        assert np.allclose(x.values, y.values)


class TestEwiseMult:
    def test_intersection_semantics(self):
        a = sv(10, {1: 2.0, 3: 3.0})
        b = sv(10, {3: 4.0, 5: 5.0})
        out = a.ewise_mult(b)
        assert out.indices.tolist() == [3]
        assert out.values.tolist() == [12.0]

    def test_disjoint_supports(self):
        a = sv(10, {1: 2.0})
        b = sv(10, {2: 3.0})
        assert a.ewise_mult(b).nnz == 0

    def test_custom_op(self):
        a = sv(10, {0: 5.0})
        b = sv(10, {0: 2.0})
        assert a.ewise_mult(b, op=np.subtract).values.tolist() == [3.0]

    @given(sparse_dicts, sparse_dicts)
    @settings(max_examples=50)
    def test_support_is_intersection(self, da, db):
        a, b = sv(50, da), sv(50, db)
        out = a.ewise_mult(b)
        assert set(out.indices.tolist()) == set(da) & set(db)

    def test_length_mismatch(self):
        with pytest.raises(ShapeError):
            sv(10, {0: 1.0}).ewise_mult(sv(9, {0: 1.0}))


class TestSelect:
    def test_position_filter(self):
        a = sv(6, {0: 1.0, 2: 2.0, 4: 3.0})
        keep = np.array([True, True, False, True, True, True])
        out = a.select(keep)
        assert out.indices.tolist() == [0, 4]

    def test_bad_mask_shape(self):
        with pytest.raises(ShapeError):
            sv(6, {0: 1.0}).select(np.ones(5, dtype=bool))

    def test_keep_all(self):
        a = sv(6, {1: 1.0, 5: 2.0})
        out = a.select(np.ones(6, dtype=bool))
        assert np.array_equal(out.indices, a.indices)
