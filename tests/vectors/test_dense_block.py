"""DenseBlock: layout invariants, constructors, column extraction."""

import numpy as np
import pytest

from repro.errors import ShapeError, TileError
from repro.vectors import DenseBlock, SparseVector, random_sparse_vector


class TestLayout:
    def test_rows_padded_to_tile_multiple(self):
        X = np.arange(20.0).reshape(10, 2)
        b = DenseBlock.from_dense(X, 8)
        assert b.n == 10 and b.B == 2 and b.n_tiles == 2
        assert b.data.shape == (16, 2)
        assert b.data.flags["C_CONTIGUOUS"]
        assert np.all(b.data[10:] == 0.0)
        assert np.array_equal(b.to_dense(), X)

    def test_one_dim_input_becomes_single_column(self):
        b = DenseBlock.from_dense(np.arange(5.0), 8)
        assert b.B == 1 and b.n == 5

    def test_validation(self):
        with pytest.raises(TileError):
            DenseBlock(4, 7, np.zeros((7, 1)))       # bad tile size
        with pytest.raises(TileError):
            DenseBlock(4, 8, np.zeros((4, 1)))       # rows not padded
        with pytest.raises(ShapeError):
            DenseBlock(-1, 8, np.zeros((8, 1)))
        with pytest.raises(ShapeError):
            DenseBlock.from_dense(np.zeros((4, 2, 2)), 8)
        with pytest.raises(ShapeError):
            DenseBlock.from_sparse_vectors([], 8)

    def test_negative_zero_normalised_to_fill_bits(self):
        X = np.array([[1.0], [-0.0], [0.0]])
        b = DenseBlock.from_dense(X, 4)
        # -0.0 holds the sentinel *value*: its bits are the sentinel's
        assert np.all(b.data[1:].view(np.uint64) == 0)

    def test_min_plus_fill(self):
        b = DenseBlock.from_dense(np.array([[1.0], [2.0]]), 4,
                                  fill=np.inf)
        assert np.all(np.isinf(b.data[2:, 0]))
        sv = b.column_sparse(0)
        assert np.array_equal(sv.indices, [0, 1])


class TestColumns:
    def test_column_and_column_sparse_roundtrip(self):
        vecs = [random_sparse_vector(30, 0.3, seed=s) for s in (1, 2)]
        b = DenseBlock.from_sparse_vectors(vecs, 8)
        for j, v in enumerate(vecs):
            assert np.array_equal(b.column(j), v.to_dense())
            sv = b.column_sparse(j)
            assert np.array_equal(sv.indices, v.indices)
            assert np.array_equal(sv.values, v.values)
        with pytest.raises(ShapeError):
            b.column(2)

    def test_from_sparse_vectors_resets_sentinel_before_scatter(self):
        # a stored entry must overwrite the sentinel, not add to it
        v = SparseVector(6, np.array([1, 4]), np.array([2.0, 1.0]))
        b = DenseBlock.from_sparse_vectors([v], 4, fill=np.inf)
        assert b.column(0)[1] == 2.0 and b.column(0)[4] == 1.0
        assert np.isinf(b.column(0)[0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            DenseBlock.from_sparse_vectors(
                [random_sparse_vector(8, 0.5, seed=1),
                 random_sparse_vector(9, 0.5, seed=2)], 8)

    def test_uint64_dtype_preserved(self):
        v = SparseVector(6, np.array([0, 3]),
                         np.array([7, 9], dtype=np.uint64))
        b = DenseBlock.from_sparse_vectors([v], 4, dtype=np.uint64)
        assert b.dtype == np.uint64
        assert b.column(0)[3] == 9

    def test_nbytes_and_len(self):
        b = DenseBlock.from_dense(np.zeros((10, 3)), 8)
        assert len(b) == 10
        assert b.nbytes() == 16 * 3 * 8
