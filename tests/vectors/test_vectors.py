"""Tests for SparseVector and the paper's vector generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.vectors import (PAPER_SEED, PAPER_SPARSITIES, SparseVector,
                           frontier_vector, random_sparse_vector)


class TestSparseVector:
    def test_from_dense_roundtrip(self):
        x = np.array([0.0, 1.5, 0.0, -2.0])
        sv = SparseVector.from_dense(x)
        assert sv.indices.tolist() == [1, 3]
        assert np.allclose(sv.to_dense(), x)

    def test_rejects_2d(self):
        with pytest.raises(ShapeError):
            SparseVector.from_dense(np.zeros((2, 2)))

    def test_values_default_to_ones(self):
        sv = SparseVector(5, np.array([1, 3]))
        assert sv.values.tolist() == [1.0, 1.0]

    def test_sorts_unsorted_indices(self):
        sv = SparseVector(5, np.array([3, 1]), np.array([30.0, 10.0]))
        assert sv.indices.tolist() == [1, 3]
        assert sv.values.tolist() == [10.0, 30.0]

    def test_rejects_duplicates(self):
        with pytest.raises(ShapeError):
            SparseVector(5, np.array([2, 2]), np.array([1.0, 2.0]))

    def test_rejects_out_of_range(self):
        with pytest.raises(ShapeError):
            SparseVector(5, np.array([5]), np.array([1.0]))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ShapeError):
            SparseVector(5, np.array([1]), np.array([1.0, 2.0]))

    def test_sparsity(self):
        sv = SparseVector(100, np.arange(10))
        assert sv.sparsity == pytest.approx(0.1)

    def test_empty(self):
        sv = SparseVector.empty(7)
        assert sv.nnz == 0 and len(sv) == 7

    def test_drop_zeros(self):
        sv = SparseVector(4, np.array([0, 1]), np.array([0.0, 2.0]))
        assert sv.drop_zeros().indices.tolist() == [1]

    def test_tiled_roundtrip(self):
        sv = SparseVector(20, np.array([0, 7, 19]),
                          np.array([1.0, 2.0, 3.0]))
        back = SparseVector.from_tiled(sv.to_tiled(4))
        assert np.array_equal(back.indices, sv.indices)
        assert np.allclose(back.values, sv.values)

    def test_as_pair(self):
        sv = SparseVector(4, np.array([2]), np.array([5.0]))
        idx, vals = sv.as_pair()
        assert idx.tolist() == [2] and vals.tolist() == [5.0]


class TestRandomSparseVector:
    def test_paper_protocol_constants(self):
        assert PAPER_SPARSITIES == (0.1, 0.01, 0.001, 0.0001)
        assert PAPER_SEED == 1

    @pytest.mark.parametrize("s", PAPER_SPARSITIES)
    def test_nnz_matches_sparsity(self, s):
        sv = random_sparse_vector(100_000, s)
        assert sv.nnz == pytest.approx(100_000 * s, rel=0.01)

    def test_deterministic_with_seed(self):
        a = random_sparse_vector(1000, 0.05, seed=1)
        b = random_sparse_vector(1000, 0.05, seed=1)
        assert np.array_equal(a.indices, b.indices)
        assert np.allclose(a.values, b.values)

    def test_at_least_one_nonzero(self):
        sv = random_sparse_vector(100, 0.0001)
        assert sv.nnz == 1

    def test_zero_sparsity_empty(self):
        assert random_sparse_vector(100, 0.0).nnz == 0

    def test_full_density(self):
        sv = random_sparse_vector(50, 1.0)
        assert sv.nnz == 50

    def test_values_never_zero(self):
        sv = random_sparse_vector(10_000, 0.1)
        assert np.all(sv.values != 0)

    def test_rejects_bad_sparsity(self):
        with pytest.raises(ShapeError):
            random_sparse_vector(10, 1.5)
        with pytest.raises(ShapeError):
            random_sparse_vector(10, -0.1)

    def test_rejects_negative_length(self):
        with pytest.raises(ShapeError):
            random_sparse_vector(-1, 0.5)

    @given(st.integers(1, 5000), st.floats(0.0, 1.0),
           st.integers(0, 1000))
    @settings(max_examples=40)
    def test_indices_sorted_unique_in_range(self, n, s, seed):
        sv = random_sparse_vector(n, s, seed=seed)
        assert np.all(np.diff(sv.indices) > 0)
        if sv.nnz:
            assert 0 <= sv.indices[0] and sv.indices[-1] < n


class TestFrontierVector:
    def test_single_source(self):
        f = frontier_vector(10, [3])
        assert f.indices.tolist() == [3]
        assert f.values.tolist() == [1.0]

    def test_multi_source_deduplicated(self):
        f = frontier_vector(10, [3, 3, 7])
        assert f.indices.tolist() == [3, 7]

    def test_out_of_range(self):
        with pytest.raises(ShapeError):
            frontier_vector(10, [10])
