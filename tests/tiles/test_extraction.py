"""Tests for very-sparse-tile extraction (paper §3.2.1)."""

import numpy as np
import pytest

from repro.errors import TileError
from repro.formats import COOMatrix
from repro.tiles import split_very_sparse_tiles
from repro.tiles.extraction import IndexedSideMatrix



def dusty_matrix(seed=0):
    """Dense 8x8 blocks on the diagonal + isolated scattered entries."""
    rng = np.random.default_rng(seed)
    d = np.zeros((64, 64))
    for b in range(0, 64, 16):
        d[b:b + 8, b:b + 8] = rng.random((8, 8)) + 0.1
    dust = rng.integers(0, 64, size=(30, 2))
    for r, c in dust:
        d[r, c] = rng.random() + 0.1
    return d


class TestSplit:
    def test_identity_preserved(self):
        d = dusty_matrix(1)
        hy = split_very_sparse_tiles(COOMatrix.from_dense(d), 8, 2)
        assert np.allclose(hy.to_coo().to_dense(), d)

    def test_threshold_zero_extracts_nothing(self):
        d = dusty_matrix(2)
        hy = split_very_sparse_tiles(COOMatrix.from_dense(d), 8, 0)
        assert hy.side.nnz == 0
        assert hy.extracted_fraction == 0.0

    def test_negative_threshold_rejected(self):
        with pytest.raises(TileError):
            split_very_sparse_tiles(COOMatrix.empty((8, 8)), 8, -1)

    def test_side_tiles_small_enough(self):
        d = dusty_matrix(3)
        threshold = 3
        hy = split_very_sparse_tiles(COOMatrix.from_dense(d), 8, threshold)
        # every tile remaining in the tiled part carries > threshold nnz
        assert np.all(hy.tiled.tile_nnz() > threshold)
        # every extracted column tile group is small per tile
        from repro.tiles import tile_nnz_histogram
        hist = tile_nnz_histogram(hy.side, 8)
        assert all(k <= threshold for k in hist)

    def test_total_nnz_split(self):
        d = dusty_matrix(4)
        coo = COOMatrix.from_dense(d)
        hy = split_very_sparse_tiles(coo, 8, 2)
        assert hy.tiled.nnz + hy.side.nnz == coo.nnz
        assert hy.nnz == coo.nnz

    def test_huge_threshold_extracts_everything(self):
        d = dusty_matrix(5)
        coo = COOMatrix.from_dense(d)
        hy = split_very_sparse_tiles(coo, 8, 10_000)
        assert hy.tiled.nnz == 0
        assert hy.side.nnz == coo.nnz
        assert hy.extracted_fraction == 1.0

    def test_empty_matrix(self):
        hy = split_very_sparse_tiles(COOMatrix.empty((16, 16)), 8, 2)
        assert hy.nnz == 0 and hy.extracted_fraction == 0.0

    def test_nbytes(self):
        d = dusty_matrix(6)
        hy = split_very_sparse_tiles(COOMatrix.from_dense(d), 8, 2)
        assert hy.nbytes() > 0


class TestIndexedSideMatrix:
    def test_groups_by_column_tile(self):
        d = dusty_matrix(7)
        hy = split_very_sparse_tiles(COOMatrix.from_dense(d), 8, 2)
        idx = IndexedSideMatrix.from_coo(hy.side, 8)
        assert idx.nnz == hy.side.nnz
        nt = 8
        for jt in range(len(idx.coltile_ptr) - 1):
            lo, hi = idx.coltile_ptr[jt], idx.coltile_ptr[jt + 1]
            assert np.all(idx.col[lo:hi] // nt == jt)

    def test_preserves_triplets(self):
        d = dusty_matrix(8)
        hy = split_very_sparse_tiles(COOMatrix.from_dense(d), 8, 2)
        idx = IndexedSideMatrix.from_coo(hy.side, 8)
        got = sorted(zip(idx.row.tolist(), idx.col.tolist(),
                         idx.val.tolist()))
        want = sorted(zip(hy.side.row.tolist(), hy.side.col.tolist(),
                          hy.side.val.tolist()))
        assert got == want

    def test_empty_side(self):
        idx = IndexedSideMatrix.from_coo(COOMatrix.empty((8, 8)), 4)
        assert idx.nnz == 0
        assert idx.coltile_ptr.tolist() == [0, 0, 0]
