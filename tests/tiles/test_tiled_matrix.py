"""Tests for the CSR-of-tiles matrix structure (paper §3.2.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TileError
from repro.formats import COOMatrix
from repro.tiles import TiledMatrix

from ..conftest import random_dense


def matrices():
    return st.tuples(st.integers(1, 60), st.integers(1, 60),
                     st.sampled_from([2, 4, 16, 32]),
                     st.integers(0, 10**6))


class TestConstruction:
    @pytest.mark.parametrize("nt", [2, 4, 16, 32, 64])
    def test_roundtrip(self, nt):
        d = random_dense(50, 70, 0.15, seed=nt)
        tm = TiledMatrix.from_dense(d, nt)
        assert np.allclose(tm.to_dense(), d)

    def test_rejects_bad_tile_size(self):
        with pytest.raises(TileError):
            TiledMatrix.from_dense(np.eye(4), 3)

    def test_empty_matrix(self):
        tm = TiledMatrix.from_coo(COOMatrix.empty((10, 10)), 4)
        assert tm.n_nonempty_tiles == 0 and tm.nnz == 0

    def test_duplicates_summed(self):
        coo = COOMatrix((4, 4), np.array([1, 1]), np.array([2, 2]),
                        np.array([1.5, 2.5]))
        tm = TiledMatrix.from_coo(coo, 4)
        assert tm.nnz == 1 and tm.values[0] == 4.0

    def test_geometry(self):
        tm = TiledMatrix.from_dense(np.eye(10), 4)
        assert tm.n_tile_rows == 3 and tm.n_tile_cols == 3
        # diagonal touches exactly the 3 diagonal tiles
        assert tm.n_nonempty_tiles == 3

    def test_entries_sorted_rowmajor_within_tiles(self):
        d = random_dense(32, 32, 0.3, seed=5)
        tm = TiledMatrix.from_dense(d, 16)
        for t in range(tm.n_nonempty_tiles):
            lr, lc, _ = tm.tile_slice(t)
            key = lr.astype(int) * tm.nt + lc.astype(int)
            assert np.all(np.diff(key) > 0)

    def test_tile_colidx_sorted_within_rows(self):
        d = random_dense(64, 64, 0.2, seed=6)
        tm = TiledMatrix.from_dense(d, 16)
        for tr in range(tm.n_tile_rows):
            lo, hi = tm.tile_ptr[tr], tm.tile_ptr[tr + 1]
            assert np.all(np.diff(tm.tile_colidx[lo:hi]) > 0)


class TestValidation:
    def test_rejects_empty_stored_tile(self):
        with pytest.raises(TileError):
            TiledMatrix((4, 4), 4, np.array([0, 1]), np.array([0]),
                        np.array([0, 0]), np.zeros(0, np.uint8),
                        np.zeros(0, np.uint8), np.zeros(0))

    def test_rejects_local_index_out_of_tile(self):
        with pytest.raises(TileError):
            TiledMatrix((4, 4), 4, np.array([0, 1]), np.array([0]),
                        np.array([0, 1]), np.array([4], np.uint8),
                        np.array([0], np.uint8), np.array([1.0]))

    def test_rejects_tile_col_out_of_range(self):
        with pytest.raises(TileError):
            TiledMatrix((4, 4), 4, np.array([0, 1]), np.array([1]),
                        np.array([0, 1]), np.array([0], np.uint8),
                        np.array([0], np.uint8), np.array([1.0]))

    def test_rejects_inconsistent_nnz_ptr(self):
        with pytest.raises(TileError):
            TiledMatrix((4, 4), 4, np.array([0, 1]), np.array([0]),
                        np.array([0, 2]), np.array([0], np.uint8),
                        np.array([0], np.uint8), np.array([1.0]))


class TestPackedIndex:
    def test_nibble_packing_nt16(self):
        d = np.zeros((16, 16))
        d[3, 7] = 1.0
        d[15, 15] = 2.0
        tm = TiledMatrix.from_dense(d, 16)
        packed = tm.packed_index()
        assert packed[0] == (3 << 4) | 7
        assert packed[1] == (15 << 4) | 15

    def test_packed_rejects_other_sizes(self):
        tm = TiledMatrix.from_dense(np.eye(8), 4)
        with pytest.raises(TileError):
            tm.packed_index()

    def test_index_bytes_per_entry(self):
        assert TiledMatrix.from_dense(np.eye(16), 16).index_bytes_per_entry() == 1
        assert TiledMatrix.from_dense(np.eye(16), 32).index_bytes_per_entry() == 2

    def test_nbytes_positive_and_scales(self):
        d = random_dense(64, 64, 0.2, seed=8)
        small = TiledMatrix.from_dense(d, 16).nbytes()
        assert small > 0


class TestAccessors:
    def test_tile_rowidx_matches_ptr(self):
        d = random_dense(48, 48, 0.2, seed=9)
        tm = TiledMatrix.from_dense(d, 16)
        rowidx = tm.tile_rowidx()
        for tr in range(tm.n_tile_rows):
            lo, hi = tm.tile_ptr[tr], tm.tile_ptr[tr + 1]
            assert np.all(rowidx[lo:hi] == tr)

    def test_tile_nnz_sums_to_total(self):
        d = random_dense(40, 40, 0.25, seed=10)
        tm = TiledMatrix.from_dense(d, 16)
        assert tm.tile_nnz().sum() == tm.nnz

    def test_tile_of_entry_cached(self):
        tm = TiledMatrix.from_dense(np.eye(8), 4)
        assert tm.tile_of_entry() is tm.tile_of_entry()

    def test_tile_slice_contents(self):
        d = np.zeros((8, 8))
        d[1, 2] = 5.0
        d[2, 1] = 6.0
        tm = TiledMatrix.from_dense(d, 4)
        lr, lc, v = tm.tile_slice(0)
        assert sorted(zip(lr.tolist(), lc.tolist(), v.tolist())) == \
            [(1, 2, 5.0), (2, 1, 6.0)]


class TestPropertyRoundtrip:
    @given(matrices())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_random(self, params):
        m, n, nt, seed = params
        d = random_dense(m, n, 0.2, seed=seed)
        tm = TiledMatrix.from_dense(d, nt)
        assert np.allclose(tm.to_dense(), d)
        tm.validate()

    @given(matrices())
    @settings(max_examples=30, deadline=None)
    def test_nnz_preserved(self, params):
        m, n, nt, seed = params
        d = random_dense(m, n, 0.2, seed=seed)
        assert TiledMatrix.from_dense(d, nt).nnz == np.count_nonzero(d)
