"""Tests for the x_ptr / x_tile tiled vector (paper §3.2.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError, TileError
from repro.tiles import SUPPORTED_TILE_SIZES, TiledVector


def sparse_vec_strategy():
    return st.tuples(
        st.integers(1, 200),                      # n
        st.sampled_from([2, 4, 16, 32, 64]),      # nt
        st.integers(0, 10**6),                    # seed
        st.floats(0.0, 0.6),                      # density
    )


def make_dense(n, seed, density):
    r = np.random.default_rng(seed)
    return (r.random(n) < density) * (1.0 - r.random(n))


class TestFigure3Example:
    """The exact example of the paper's Figure 3."""

    def test_paper_example(self):
        x = np.zeros(16)
        # five nonzeros, tiles 2 and 4 (1-based) empty
        x[[0, 2, 3, 9, 11]] = [1, 5, 2, 4, 3]
        tv = TiledVector.from_dense(x, 4)
        assert tv.x_ptr.tolist() == [0, -1, 1, -1]
        assert tv.n_nonempty_tiles == 2
        # the retrieval formula x_tile[x_ptr[i/nt]*nt + i%nt]
        for i in np.flatnonzero(x):
            t = tv.x_ptr[i // 4]
            assert tv.x_tile[t * 4 + i % 4] == x[i]


class TestConstruction:
    def test_rejects_bad_tile_size(self):
        with pytest.raises(TileError):
            TiledVector.from_dense(np.ones(10), 5)

    def test_rejects_negative_length(self):
        with pytest.raises(ShapeError):
            TiledVector.empty(-1, 4)

    def test_supported_sizes_include_paper_values(self):
        assert {16, 32, 64} <= set(SUPPORTED_TILE_SIZES)

    def test_empty_vector(self):
        tv = TiledVector.empty(20, 4)
        assert tv.nnz == 0 and tv.n_nonempty_tiles == 0
        assert np.allclose(tv.to_dense(), 0.0)

    def test_from_sparse_rejects_out_of_range(self):
        with pytest.raises(ShapeError):
            TiledVector.from_sparse(np.array([10]), np.array([1.0]), 10, 4)

    def test_from_sparse_rejects_length_mismatch(self):
        with pytest.raises(ShapeError):
            TiledVector.from_sparse(np.array([1, 2]), np.array([1.0]), 10, 4)

    def test_from_sparse_sums_duplicates(self):
        tv = TiledVector.from_sparse(np.array([3, 3]), np.array([1.0, 2.0]),
                                     8, 4)
        assert tv.get(3) == 3.0

    def test_validate_rejects_bad_ptr(self):
        with pytest.raises(TileError):
            TiledVector(8, 4, np.array([0, 5]), np.zeros(8))

    def test_validate_rejects_wrong_tile_payload(self):
        with pytest.raises(TileError):
            TiledVector(8, 4, np.array([0, 1]), np.zeros(4))

    def test_length_not_multiple_of_nt(self):
        x = np.zeros(10)
        x[9] = 7.0
        tv = TiledVector.from_dense(x, 4)
        assert tv.get(9) == 7.0
        assert len(tv.to_dense()) == 10


class TestIndexingIdentity:
    @given(sparse_vec_strategy())
    @settings(max_examples=60, deadline=None)
    def test_get_matches_dense(self, params):
        n, nt, seed, density = params
        x = make_dense(n, seed, density)
        tv = TiledVector.from_dense(x, nt)
        for i in range(n):
            assert tv.get(i) == x[i]

    @given(sparse_vec_strategy())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_dense(self, params):
        n, nt, seed, density = params
        x = make_dense(n, seed, density)
        assert np.allclose(TiledVector.from_dense(x, nt).to_dense(), x)

    @given(sparse_vec_strategy())
    @settings(max_examples=60, deadline=None)
    def test_sparse_roundtrip(self, params):
        n, nt, seed, density = params
        x = make_dense(n, seed, density)
        tv = TiledVector.from_dense(x, nt)
        idx, vals = tv.to_sparse()
        tv2 = TiledVector.from_sparse(idx, vals, n, nt)
        assert np.allclose(tv2.to_dense(), x)

    def test_get_out_of_range(self):
        tv = TiledVector.empty(8, 4)
        with pytest.raises(ShapeError):
            tv.get(8)


class TestFillSentinel:
    def test_min_plus_fill(self):
        tv = TiledVector.from_sparse(np.array([1]), np.array([0.5]), 8, 4,
                                     fill=np.inf)
        assert tv.get(0) == np.inf       # same tile, unoccupied slot
        assert tv.get(1) == 0.5
        assert tv.get(7) == np.inf       # empty tile
        assert tv.nnz == 1

    def test_fill_dense_roundtrip(self):
        x = np.full(10, np.inf)
        x[3] = 2.0
        tv = TiledVector.from_dense(x, 2, fill=np.inf)
        assert tv.n_nonempty_tiles == 1
        assert np.array_equal(tv.to_dense(), x)

    def test_zero_value_entry_with_inf_fill(self):
        """Value 0.0 is a legitimate entry under min-plus."""
        tv = TiledVector.from_sparse(np.array([2]), np.array([0.0]), 8, 4,
                                     fill=np.inf)
        assert tv.get(2) == 0.0
        assert tv.nnz == 1


class TestStats:
    def test_sparsity(self):
        x = np.zeros(100)
        x[:10] = 1.0
        assert TiledVector.from_dense(x, 4).sparsity == pytest.approx(0.1)

    def test_nbytes_counts_both_arrays(self):
        x = np.zeros(64)
        x[0] = 1.0
        tv = TiledVector.from_dense(x, 16)
        assert tv.nbytes() == tv.x_ptr.nbytes + tv.x_tile.nbytes

    def test_nonzero_tile_ids_sorted(self):
        x = np.zeros(64)
        x[[50, 3]] = 1.0
        ids = TiledVector.from_dense(x, 16).nonzero_tile_ids()
        assert ids.tolist() == [0, 3]

    def test_len(self):
        assert len(TiledVector.empty(42, 2)) == 42


class TestStorageDtype:
    """Integer semirings need their dtype threaded through construction
    — folding uint64 bitmasks through the float64 default corrupts
    words above 2^53 and breaks bitwise kernels."""

    def test_from_sparse_uint64_exact(self):
        word = np.uint64((1 << 60) + 1)   # not representable in f64
        tv = TiledVector.from_sparse(
            np.array([5]), np.array([word], dtype=np.uint64), 16, 4,
            dtype=np.uint64)
        assert tv.x_tile.dtype == np.uint64
        assert tv.get(5) == word

    def test_from_sparse_defaults_to_float64(self):
        tv = TiledVector.from_sparse(np.array([0]),
                                     np.array([3], dtype=np.int32),
                                     8, 4)
        assert tv.x_tile.dtype == np.float64

    def test_from_dense_dtype_override(self):
        x = np.zeros(8, dtype=np.uint64)
        x[2] = np.uint64(0xF0)
        tv = TiledVector.from_dense(x, 4, dtype=np.uint64)
        assert tv.x_tile.dtype == np.uint64
        assert np.array_equal(tv.to_dense(), x)

    def test_from_dense_default_float_kept(self):
        tv = TiledVector.from_dense(np.ones(8, dtype=np.float32), 4)
        assert tv.x_tile.dtype == np.float32
