"""Tests for tile-occupancy statistics (Table 2 machinery)."""

import numpy as np
import pytest

from repro.errors import TileError
from repro.formats import COOMatrix
from repro.tiles import (count_nonempty_tiles, tile_nnz_histogram,
                         tile_stats, tile_stats_sweep)

from ..conftest import random_dense


class TestCountTiles:
    def test_identity_matrix(self):
        coo = COOMatrix.from_dense(np.eye(16))
        assert count_nonempty_tiles(coo, 4) == 4
        assert count_nonempty_tiles(coo, 16) == 1

    def test_empty(self):
        assert count_nonempty_tiles(COOMatrix.empty((8, 8)), 4) == 0

    def test_bad_tile_size(self):
        with pytest.raises(TileError):
            count_nonempty_tiles(COOMatrix.empty((8, 8)), 0)

    def test_matches_tiled_matrix(self):
        from repro.tiles import TiledMatrix

        d = random_dense(60, 45, 0.15, seed=1)
        coo = COOMatrix.from_dense(d)
        for nt in (4, 16, 32):
            assert count_nonempty_tiles(coo, nt) == \
                TiledMatrix.from_coo(coo, nt).n_nonempty_tiles

    def test_monotone_in_tile_size(self):
        """Bigger tiles can only merge tiles, never split them."""
        d = random_dense(64, 64, 0.1, seed=2)
        coo = COOMatrix.from_dense(d)
        counts = [count_nonempty_tiles(coo, nt) for nt in (16, 32, 64)]
        assert counts[0] >= counts[1] >= counts[2] >= 1


class TestHistogram:
    def test_sums_to_nnz(self):
        d = random_dense(40, 40, 0.2, seed=3)
        coo = COOMatrix.from_dense(d)
        hist = tile_nnz_histogram(coo, 8)
        assert sum(k * v for k, v in hist.items()) == coo.nnz

    def test_empty(self):
        assert tile_nnz_histogram(COOMatrix.empty((4, 4)), 4) == {}

    def test_dense_tile(self):
        coo = COOMatrix.from_dense(np.ones((4, 4)))
        assert tile_nnz_histogram(coo, 4) == {16: 1}


class TestTileStats:
    def test_fields(self):
        coo = COOMatrix.from_dense(np.eye(8))
        st = tile_stats(coo, 4)
        assert st.nnz == 8
        assert st.n_nonempty_tiles == 2
        assert st.total_tiles == 4
        assert st.nonempty_tile_fraction == pytest.approx(0.5)
        assert st.avg_nnz_per_tile == pytest.approx(4.0)
        assert st.in_tile_density == pytest.approx(8 / 32)

    def test_empty_matrix_stats(self):
        st = tile_stats(COOMatrix.empty((8, 8)), 4)
        assert st.n_nonempty_tiles == 0
        assert st.avg_nnz_per_tile == 0.0
        assert st.in_tile_density == 0.0

    def test_sweep_covers_paper_sizes(self):
        d = random_dense(70, 70, 0.1, seed=4)
        sweep = tile_stats_sweep(COOMatrix.from_dense(d))
        assert set(sweep) == {16, 32, 64}
