"""Unit tests for the plan-time gather structures behind the
active-tile BFS kernels: the cached bit weights, the word packer, the
segmented OR scatter and the Push-CSR column view."""

import numpy as np
import pytest

from repro.errors import ShapeError, TileError
from repro.tiles import BitTiledMatrix
from repro.tiles.bitmask import (bit_weight_vector, pack_hit_words,
                                 segmented_scatter_or)

from ..conftest import random_coo, random_graph_coo


class TestBitWeightVector:
    @pytest.mark.parametrize("nt", [2, 4, 8, 16, 32, 64])
    def test_msb_first_formula(self, nt):
        w = bit_weight_vector(nt)
        expected = np.array([1 << (nt - 1 - i) for i in range(nt)],
                            dtype=np.uint64)
        assert w.dtype == np.uint64
        assert np.array_equal(w, expected)

    def test_cached_instance(self):
        assert bit_weight_vector(16) is bit_weight_vector(16)


class TestPackHitWords:
    @pytest.mark.parametrize("nt", [2, 8, 16, 32, 64])
    def test_matches_weight_sum(self, nt):
        rng = np.random.default_rng(nt)
        hits = rng.random((37, nt)) < 0.3
        packed = pack_hit_words(hits, nt)
        expected = (hits * bit_weight_vector(nt)).sum(
            axis=1, dtype=np.uint64)
        assert packed.dtype == np.uint64
        assert np.array_equal(packed, expected)

    def test_empty(self):
        assert len(pack_hit_words(np.zeros((0, 8), dtype=bool), 8)) == 0

    def test_non_contiguous_input(self):
        rng = np.random.default_rng(1)
        buf = rng.random((20, 64)) < 0.5
        view = buf[:11]
        assert np.array_equal(pack_hit_words(view, 64),
                              pack_hit_words(view.copy(), 64))


class TestSegmentedScatterOr:
    def scatter_cases(self):
        rng = np.random.default_rng(7)
        k = 500
        words = rng.integers(0, 2**63, size=k, dtype=np.uint64)
        unsorted_idx = rng.integers(0, 40, size=k, dtype=np.int64)
        yield unsorted_idx, words                 # element-at-a-time path
        yield np.sort(unsorted_idx), words        # reduceat fast path
        yield unsorted_idx[:50], words[:50]       # below fast-path cutoff

    def test_matches_bitwise_or_at(self):
        for idx, words in self.scatter_cases():
            got = np.zeros(40, dtype=np.uint64)
            expected = got.copy()
            segmented_scatter_or(got, idx, words)
            np.bitwise_or.at(expected, idx, words)
            assert np.array_equal(got, expected)

    def test_accumulates_into_existing(self):
        out = np.array([1, 2, 4], dtype=np.uint64)
        segmented_scatter_or(out, np.array([0, 0, 2]),
                             np.array([2, 8, 1], dtype=np.uint64))
        assert np.array_equal(out, np.array([11, 2, 5], dtype=np.uint64))

    def test_empty_noop(self):
        out = np.array([3], dtype=np.uint64)
        segmented_scatter_or(out, np.zeros(0, dtype=np.int64),
                             np.zeros(0, dtype=np.uint64))
        assert out[0] == 3


class TestColumnView:
    def test_csc_is_identity(self):
        coo = random_graph_coo(60, avg_degree=4.0, seed=1)
        a1 = BitTiledMatrix.from_coo(coo, 8, "csc")
        assert a1.column_view() is a1

    def test_csr_rebuilds_and_caches(self):
        coo = random_coo(70, 70, density=0.05, seed=2)
        a2 = BitTiledMatrix.from_coo(coo, 8, "csr")
        view = a2.column_view()
        assert view.orientation == "csc"
        rebuilt = BitTiledMatrix.from_coo(coo, 8, "csc")
        assert np.array_equal(view.words, rebuilt.words)
        assert np.array_equal(view.tile_ptr, rebuilt.tile_ptr)
        assert a2.column_view() is view

    def test_attach_is_preferred(self):
        coo = random_graph_coo(50, avg_degree=4.0, seed=3)
        a1 = BitTiledMatrix.from_coo(coo, 8, "csc")
        a2 = BitTiledMatrix.from_coo(coo, 8, "csr")
        a2.attach_column_view(a1)
        assert a2.column_view() is a1

    def test_attach_rejects_wrong_orientation(self):
        coo = random_graph_coo(50, avg_degree=4.0, seed=4)
        a2 = BitTiledMatrix.from_coo(coo, 8, "csr")
        with pytest.raises(TileError):
            a2.attach_column_view(a2)

    def test_attach_rejects_mismatched_shape_or_nt(self):
        coo = random_graph_coo(50, avg_degree=4.0, seed=5)
        a2 = BitTiledMatrix.from_coo(coo, 8, "csr")
        with pytest.raises(ShapeError):
            a2.attach_column_view(BitTiledMatrix.from_coo(coo, 16, "csc"))
        other = random_graph_coo(34, avg_degree=4.0, seed=6)
        with pytest.raises(ShapeError):
            a2.attach_column_view(BitTiledMatrix.from_coo(other, 8, "csc"))


class TestCachedLaunchConstants:
    def test_tile_majoridx_cached_and_correct(self):
        coo = random_graph_coo(80, avg_degree=4.0, seed=7)
        a2 = BitTiledMatrix.from_coo(coo, 8, "csr")
        idx = a2.tile_majoridx()
        assert a2.tile_majoridx() is idx
        expected = np.repeat(np.arange(len(a2.tile_ptr) - 1),
                             np.diff(a2.tile_ptr))
        assert np.array_equal(idx, expected)

    def test_row_warp_count(self):
        coo = random_graph_coo(80, avg_degree=4.0, seed=8)
        a2 = BitTiledMatrix.from_coo(coo, 8, "csr")
        per_row = np.diff(a2.tile_ptr)
        assert a2.row_warp_count() == float(
            np.ceil(per_row / 32.0).sum())

    def test_full_mask_words_read_only(self):
        coo = random_graph_coo(80, avg_degree=4.0, seed=9)
        a1 = BitTiledMatrix.from_coo(coo, 8, "csc")
        words = a1.full_mask_words()
        assert a1.full_mask_words() is words
        with pytest.raises(ValueError):
            words[0] = 0
