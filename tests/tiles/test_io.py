"""Round-trip tests for tiled-structure serialization."""

import numpy as np
import pytest

from repro.errors import IOFormatError
from repro.formats import COOMatrix
from repro.tiles import (BitTiledMatrix, TiledMatrix, TiledVector,
                         load_tiled, save_tiled, split_very_sparse_tiles)

from ..conftest import random_dense


@pytest.fixture
def coo():
    return COOMatrix.from_dense(random_dense(50, 50, 0.1, seed=1))


class TestRoundTrips:
    def test_tiled_matrix(self, coo, tmp_path):
        tm = TiledMatrix.from_coo(coo, 16)
        p = tmp_path / "m.npz"
        save_tiled(tm, p)
        back = load_tiled(p)
        assert isinstance(back, TiledMatrix)
        assert back.nt == 16
        assert np.allclose(back.to_dense(), tm.to_dense())

    def test_tiled_vector_with_fill(self, tmp_path):
        tv = TiledVector.from_sparse(np.array([3]), np.array([2.0]), 12,
                                     4, fill=np.inf)
        p = tmp_path / "v.npz"
        save_tiled(tv, p)
        back = load_tiled(p)
        assert isinstance(back, TiledVector)
        assert back.fill == np.inf
        assert np.array_equal(back.to_dense(), tv.to_dense())

    @pytest.mark.parametrize("orientation", ["csc", "csr"])
    def test_bit_tiled_matrix(self, coo, tmp_path, orientation):
        bm = BitTiledMatrix.from_coo(coo, 16, orientation)
        p = tmp_path / "b.npz"
        save_tiled(bm, p)
        back = load_tiled(p)
        assert isinstance(back, BitTiledMatrix)
        assert back.orientation == orientation
        assert np.array_equal(back.words, bm.words)

    def test_hybrid(self, coo, tmp_path):
        hy = split_very_sparse_tiles(coo, 16, 3)
        p = tmp_path / "h.npz"
        save_tiled(hy, p)
        back = load_tiled(p)
        assert back.threshold == 3
        assert np.allclose(back.to_coo().to_dense(),
                           hy.to_coo().to_dense())

    def test_loaded_matrix_usable_in_spmspv(self, coo, tmp_path):
        from repro.core import TileSpMSpV
        from repro.vectors import random_sparse_vector

        hy = split_very_sparse_tiles(coo, 16, 2)
        p = tmp_path / "h.npz"
        save_tiled(hy, p)
        op = TileSpMSpV(load_tiled(p))
        x = random_sparse_vector(50, 0.2)
        assert np.allclose(op.multiply(x).to_dense(),
                           coo.to_dense() @ x.to_dense())


class TestErrors:
    def test_unsupported_object(self, tmp_path):
        with pytest.raises(IOFormatError):
            save_tiled({"not": "tiled"}, tmp_path / "x.npz")

    def test_missing_file(self, tmp_path):
        with pytest.raises(IOFormatError):
            load_tiled(tmp_path / "missing.npz")

    def test_foreign_npz_rejected(self, tmp_path):
        p = tmp_path / "foreign.npz"
        np.savez(p, a=np.zeros(3))
        with pytest.raises(IOFormatError):
            load_tiled(p)

    def test_future_version_rejected(self, tmp_path):
        p = tmp_path / "future.npz"
        np.savez(p, kind="tiled_matrix", version=999)
        with pytest.raises(IOFormatError):
            load_tiled(p)
