"""Round-trip tests for tiled-structure serialization."""

import numpy as np
import pytest

from repro.errors import IOFormatError
from repro.formats import COOMatrix
from repro.semiring import MAX_TIMES, MIN_PLUS, OR_AND, PLUS_TIMES
from repro.tiles import (BitTiledMatrix, TiledMatrix, TiledVector,
                         load_tiled, load_tiled_mmap, read_mmap_manifest,
                         save_tiled, save_tiled_mmap,
                         split_very_sparse_tiles)

from ..conftest import random_dense


@pytest.fixture
def coo():
    return COOMatrix.from_dense(random_dense(50, 50, 0.1, seed=1))


class TestRoundTrips:
    def test_tiled_matrix(self, coo, tmp_path):
        tm = TiledMatrix.from_coo(coo, 16)
        p = tmp_path / "m.npz"
        save_tiled(tm, p)
        back = load_tiled(p)
        assert isinstance(back, TiledMatrix)
        assert back.nt == 16
        assert np.allclose(back.to_dense(), tm.to_dense())

    def test_tiled_vector_with_fill(self, tmp_path):
        tv = TiledVector.from_sparse(np.array([3]), np.array([2.0]), 12,
                                     4, fill=np.inf)
        p = tmp_path / "v.npz"
        save_tiled(tv, p)
        back = load_tiled(p)
        assert isinstance(back, TiledVector)
        assert back.fill == np.inf
        assert np.array_equal(back.to_dense(), tv.to_dense())

    @pytest.mark.parametrize("orientation", ["csc", "csr"])
    def test_bit_tiled_matrix(self, coo, tmp_path, orientation):
        bm = BitTiledMatrix.from_coo(coo, 16, orientation)
        p = tmp_path / "b.npz"
        save_tiled(bm, p)
        back = load_tiled(p)
        assert isinstance(back, BitTiledMatrix)
        assert back.orientation == orientation
        assert np.array_equal(back.words, bm.words)

    def test_hybrid(self, coo, tmp_path):
        hy = split_very_sparse_tiles(coo, 16, 3)
        p = tmp_path / "h.npz"
        save_tiled(hy, p)
        back = load_tiled(p)
        assert back.threshold == 3
        assert np.allclose(back.to_coo().to_dense(),
                           hy.to_coo().to_dense())

    def test_loaded_matrix_usable_in_spmspv(self, coo, tmp_path):
        from repro.core import TileSpMSpV
        from repro.vectors import random_sparse_vector

        hy = split_very_sparse_tiles(coo, 16, 2)
        p = tmp_path / "h.npz"
        save_tiled(hy, p)
        op = TileSpMSpV(load_tiled(p))
        x = random_sparse_vector(50, 0.2)
        assert np.allclose(op.multiply(x).to_dense(),
                           coo.to_dense() @ x.to_dense())


class TestErrors:
    def test_unsupported_object(self, tmp_path):
        with pytest.raises(IOFormatError):
            save_tiled({"not": "tiled"}, tmp_path / "x.npz")

    def test_missing_file(self, tmp_path):
        with pytest.raises(IOFormatError):
            load_tiled(tmp_path / "missing.npz")

    def test_foreign_npz_rejected(self, tmp_path):
        p = tmp_path / "foreign.npz"
        np.savez(p, a=np.zeros(3))
        with pytest.raises(IOFormatError):
            load_tiled(p)

    def test_future_version_rejected(self, tmp_path):
        p = tmp_path / "future.npz"
        np.savez(p, kind="tiled_matrix", version=999)
        with pytest.raises(IOFormatError):
            load_tiled(p)


class TestDtypePreservation:
    """Satellite: save/load must preserve tile dtypes *exactly* — a
    uint64 or_and matrix that silently came back float64 would corrupt
    every bit-pattern value in it."""

    @pytest.mark.parametrize(
        "sr", [PLUS_TIMES, OR_AND, MIN_PLUS, MAX_TIMES],
        ids=lambda s: s.name)
    def test_round_trip_preserves_semiring_dtype(self, tmp_path, sr):
        rng = np.random.default_rng(11)
        nnz = 80
        row = rng.integers(0, 48, nnz).astype(np.int64)
        col = rng.integers(0, 48, nnz).astype(np.int64)
        if sr.dtype.kind == "u":
            val = rng.integers(1, 2 ** 63, nnz).astype(sr.dtype)
        else:
            val = rng.standard_normal(nnz).astype(sr.dtype)
            val[::7] = -0.0          # signed zero must survive intact
        tm = TiledMatrix.from_coo(COOMatrix((48, 48), row, col, val), 16)
        p = tmp_path / f"{sr.name}.npz"
        save_tiled(tm, p)
        back = load_tiled(p)
        assert back.values.dtype == tm.values.dtype == sr.dtype
        # bit-level comparison: array_equal would equate -0.0 and 0.0
        assert np.array_equal(back.values.view(np.uint64),
                              tm.values.view(np.uint64))

    def test_dtype_tag_mismatch_rejected(self, coo, tmp_path):
        tm = TiledMatrix.from_coo(coo, 16)
        p = tmp_path / "m.npz"
        save_tiled(tm, p)
        with np.load(p, allow_pickle=False) as z:
            payload = {k: z[k] for k in z.files}
        payload["values_dtype"] = np.asarray("float32")
        bad = tmp_path / "bad.npz"
        np.savez(bad, **payload)
        with pytest.raises(IOFormatError):
            load_tiled(bad)


class TestMmapRoundTrip:
    def test_round_trip_bit_exact(self, coo, tmp_path):
        tm = TiledMatrix.from_coo(coo, 16)
        d = save_tiled_mmap(tm, tmp_path / "shard")
        manifest = read_mmap_manifest(d)
        assert manifest["nnz"] == tm.nnz
        assert manifest["nbytes"] == tm.nbytes()
        back = load_tiled_mmap(d)

        def mmap_backed(a):
            while a is not None:
                if isinstance(a, np.memmap):
                    return True
                a = a.base
            return False

        assert mmap_backed(back.values)
        assert back.values.dtype == tm.values.dtype
        assert np.array_equal(np.asarray(back.values), tm.values)
        assert np.allclose(back.to_dense(), tm.to_dense())

    def test_mmap_arrays_usable_in_kernel(self, coo, tmp_path):
        from repro.core.spmspv import as_tiled_vector
        from repro.core.spmspv_kernels import tiled_kernel
        from repro.vectors import random_sparse_vector

        tm = TiledMatrix.from_coo(coo, 16)
        back = load_tiled_mmap(save_tiled_mmap(tm, tmp_path / "s"))
        x = random_sparse_vector(50, 0.2)
        xt = as_tiled_vector(x, 16, 0.0)
        y_mmap, _ = tiled_kernel(back, xt)
        y_ref, _ = tiled_kernel(tm, xt)
        assert np.array_equal(y_mmap, y_ref)

    def test_manifest_dtype_mismatch_rejected(self, coo, tmp_path):
        tm = TiledMatrix.from_coo(coo, 16)
        d = save_tiled_mmap(tm, tmp_path / "shard")
        np.save(d / "values.npy",
                np.zeros(tm.values.shape, dtype=np.float32))
        with pytest.raises(IOFormatError):
            load_tiled_mmap(d)

    def test_non_directory_rejected(self, tmp_path):
        with pytest.raises(IOFormatError):
            read_mmap_manifest(tmp_path / "nope")
