"""Tests for bitmask tiles and bit vectors (paper §3.2.3, Fig. 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError, TileError
from repro.formats import COOMatrix
from repro.tiles import (BitTiledMatrix, BitVector, bit_positions,
                         pack_bits, unpack_words)

from ..conftest import random_dense


class TestBitConvention:
    def test_msb_first_paper_example(self):
        """Figure 5: vector {1,0,0,0} with nt=4 prints as 8."""
        assert pack_bits(np.array([0]), 4) == 8
        assert pack_bits(np.array([0, 1]), 4) == 12
        assert pack_bits(np.array([3]), 4) == 1

    def test_bit_positions_distinct(self):
        pos = bit_positions(np.arange(64), 64)
        assert len(np.unique(pos)) == 64

    def test_unpack_inverse_of_pack(self):
        local = np.array([0, 3, 5])
        word = pack_bits(local, 8)
        bits = unpack_words(np.array([word], dtype=np.uint64), 8)
        assert np.flatnonzero(bits[0]).tolist() == [0, 3, 5]

    @given(st.sets(st.integers(0, 63), max_size=30),
           st.sampled_from([4, 8, 16, 32, 64]))
    @settings(max_examples=50)
    def test_pack_unpack_roundtrip(self, bits, nt):
        bits = {b for b in bits if b < nt}
        word = pack_bits(np.array(sorted(bits), dtype=np.int64), nt)
        got = np.flatnonzero(
            unpack_words(np.array([word], dtype=np.uint64), nt)[0])
        assert set(got.tolist()) == bits


class TestBitVector:
    def test_from_indices_roundtrip(self):
        v = BitVector.from_indices(np.array([0, 7, 31, 32, 63]), 64, 32)
        assert v.to_indices().tolist() == [0, 7, 31, 32, 63]
        assert v.count() == 5

    def test_get(self):
        v = BitVector.from_indices(np.array([5]), 20, 4)
        assert v.get(5) and not v.get(4)

    def test_get_out_of_range(self):
        with pytest.raises(ShapeError):
            BitVector.zeros(8, 4).get(8)

    def test_set_indices_out_of_range(self):
        v = BitVector.zeros(8, 4)
        with pytest.raises(ShapeError):
            v.set_indices(np.array([9]))

    def test_full_respects_length(self):
        v = BitVector.full(10, 4)
        assert v.count() == 10
        assert v.to_indices().tolist() == list(range(10))

    def test_invert_respects_tail(self):
        v = BitVector.from_indices(np.array([0, 9]), 10, 4)
        inv = v.invert()
        assert inv.count() == 8
        assert 0 not in inv.to_indices()
        # tail bits (10, 11) stay clear
        inv.validate()

    def test_or_and_andnot(self):
        a = BitVector.from_indices(np.array([1, 2]), 8, 4)
        b = BitVector.from_indices(np.array([2, 3]), 8, 4)
        assert (a | b).to_indices().tolist() == [1, 2, 3]
        assert (a & b).to_indices().tolist() == [2]
        assert a.andnot(b).to_indices().tolist() == [1]

    def test_mismatched_ops_rejected(self):
        a = BitVector.zeros(8, 4)
        b = BitVector.zeros(8, 2)
        with pytest.raises(ShapeError):
            _ = a | b

    def test_validate_rejects_tail_bits(self):
        words = np.array([np.uint64(0b1111)], dtype=np.uint64)
        # n=2, nt=4: only the top 2 used bits may be set
        with pytest.raises(TileError):
            BitVector(2, 4, words)

    def test_validate_rejects_high_bits(self):
        words = np.array([np.uint64(1) << np.uint64(10)], dtype=np.uint64)
        with pytest.raises(TileError):
            BitVector(8, 4, words)

    def test_density(self):
        v = BitVector.from_indices(np.arange(5), 50, 4)
        assert v.density == pytest.approx(0.1)

    def test_nonzero_tile_ids(self):
        v = BitVector.from_indices(np.array([0, 17]), 32, 4)
        assert v.nonzero_tile_ids().tolist() == [0, 4]

    def test_nbytes_word_width(self):
        assert BitVector.zeros(64, 32).nbytes() == 2 * 4
        assert BitVector.zeros(64, 64).nbytes() == 1 * 8

    @given(st.sets(st.integers(0, 99), max_size=40),
           st.sampled_from([4, 16, 32, 64]))
    @settings(max_examples=50)
    def test_roundtrip_property(self, idx, nt):
        v = BitVector.from_indices(np.array(sorted(idx), dtype=np.int64),
                                   100, nt)
        assert v.to_indices().tolist() == sorted(idx)
        assert v.count() == len(idx)


class TestBitTiledMatrix:
    @pytest.mark.parametrize("nt", [4, 16, 32, 64])
    @pytest.mark.parametrize("orientation", ["csc", "csr"])
    def test_pattern_roundtrip(self, nt, orientation):
        d = random_dense(50, 50, 0.1, seed=nt)
        bm = BitTiledMatrix.from_coo(COOMatrix.from_dense(d), nt,
                                     orientation)
        assert np.array_equal(bm.to_coo().to_dense() != 0, d != 0)

    def test_rejects_bad_orientation(self):
        with pytest.raises(TileError):
            BitTiledMatrix.from_coo(COOMatrix.empty((4, 4)), 4, "coo")

    def test_undirected_graph_same_words(self):
        """Paper §3.2.3: for an undirected graph the CSC and CSR
        compressions hold the same information (A == A^T)."""
        d = random_dense(32, 32, 0.1, seed=3)
        d = ((d + d.T) != 0).astype(float)
        coo = COOMatrix.from_dense(d)
        a1 = BitTiledMatrix.from_coo(coo, 16, "csc")
        a2 = BitTiledMatrix.from_coo(coo, 16, "csr")
        # same tile count, and the multiset of words matches
        assert a1.n_nonempty_tiles == a2.n_nonempty_tiles
        assert np.array_equal(np.sort(a1.words.ravel()),
                              np.sort(a2.words.ravel()))

    def test_empty_matrix(self):
        bm = BitTiledMatrix.from_coo(COOMatrix.empty((8, 8)), 4, "csc")
        assert bm.n_nonempty_tiles == 0
        assert bm.to_coo().nnz == 0

    def test_nonsquare(self):
        d = random_dense(20, 36, 0.15, seed=4)
        bm = BitTiledMatrix.from_coo(COOMatrix.from_dense(d), 4, "csr")
        assert np.array_equal(bm.to_coo().to_dense() != 0, d != 0)

    def test_tiles_of_major(self):
        d = np.zeros((8, 8))
        d[0, 0] = d[4, 0] = 1.0   # two tiles in tile column 0
        bm = BitTiledMatrix.from_coo(COOMatrix.from_dense(d), 4, "csc")
        assert len(bm.tiles_of_major(0)) == 2
        assert len(bm.tiles_of_major(1)) == 0

    def test_nbytes_positive(self):
        d = random_dense(32, 32, 0.2, seed=5)
        bm = BitTiledMatrix.from_coo(COOMatrix.from_dense(d), 32, "csc")
        assert bm.nbytes() > 0

    def test_values_ignored(self):
        coo = COOMatrix((4, 4), np.array([1]), np.array([2]),
                        np.array([123.456]))
        bm = BitTiledMatrix.from_coo(coo, 4, "csc")
        assert bm.to_coo().val.tolist() == [1.0]


class TestSymmetricStorageSharing:
    """Paper §3.2.3: undirected graphs need only one word array."""

    def test_pattern_is_symmetric(self):
        from repro.tiles import pattern_is_symmetric

        sym = COOMatrix((3, 3), np.array([0, 1]), np.array([1, 0]))
        asym = COOMatrix((3, 3), np.array([0]), np.array([1]))
        rect = COOMatrix((2, 3), np.array([0]), np.array([1]))
        assert pattern_is_symmetric(sym)
        assert not pattern_is_symmetric(asym)
        assert not pattern_is_symmetric(rect)

    def test_reinterpreted_equals_rebuilt(self):
        from ..conftest import random_graph_coo

        coo = random_graph_coo(80, 4.0, seed=10)
        a1 = BitTiledMatrix.from_coo(coo, 16, "csc")
        a2_shared = a1.as_reinterpreted("csr")
        a2_built = BitTiledMatrix.from_coo(coo, 16, "csr")
        assert np.array_equal(a2_shared.tile_ptr, a2_built.tile_ptr)
        assert np.array_equal(a2_shared.tile_otheridx,
                              a2_built.tile_otheridx)
        assert np.array_equal(a2_shared.words, a2_built.words)
        assert a2_shared.shares_storage_with(a1)

    def test_reinterpret_bad_orientation(self):
        a1 = BitTiledMatrix.from_coo(COOMatrix.empty((4, 4)), 4, "csc")
        with pytest.raises(TileError):
            a1.as_reinterpreted("coo")

    def test_tilebfs_shares_on_symmetric(self):
        from repro.core import TileBFS
        from ..conftest import random_graph_coo

        coo = random_graph_coo(100, 4.0, seed=11)
        bfs = TileBFS(coo, nt=16)
        assert bfs.A2.shares_storage_with(bfs.A1)

    def test_tilebfs_separate_on_asymmetric(self):
        from repro.core import TileBFS

        coo = COOMatrix((40, 40), np.arange(39), np.arange(1, 40))
        bfs = TileBFS(coo, nt=16, extract_threshold=0)
        assert not bfs.A2.shares_storage_with(bfs.A1)

    def test_footprint_halved(self):
        from repro.core import TileBFS
        from ..conftest import random_graph_coo

        coo = random_graph_coo(150, 5.0, seed=12)
        shared = TileBFS(coo, nt=16, extract_threshold=0)
        # a directed version of the same pattern (drop the mirror edges)
        upper = coo.row < coo.col
        asym = COOMatrix(coo.shape, coo.row[upper], coo.col[upper],
                         coo.val[upper])
        built = TileBFS(asym, nt=16, extract_threshold=0)
        # the symmetric matrix has ~2x the nnz yet roughly the same
        # footprint as the asymmetric one that must store A1 and A2
        assert shared.format_nbytes() < 1.5 * built.format_nbytes()
